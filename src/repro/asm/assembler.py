"""Two-pass RISC-V assembler.

Supports the RV64IM instruction set from :mod:`repro.isa`, the standard
pseudo-instructions, data directives, and optional RVC compression.

Design notes
------------
* **Deterministic sizing.**  Pass 1 fully encodes every statement whose
  operands are numeric (applying RVC compression when enabled) and records
  a fixed-size *fixup* for every label-dependent statement (branches,
  jumps, ``la``, ``%hi/%lo``).  Fixups are never compressed, so all
  addresses are known after pass 1 — no relaxation iterations.
* **Slot layout.**  The assembler emits the per-instruction slot table the
  ERIC encryption map is built on (offset and 2/4-byte size per slot).
* **Sections.**  ``.text`` and ``.data``; data is placed at the first
  8-aligned address after text.

Syntax accepted::

    # comment, // comment
    .text / .data / .globl sym / .equ NAME, value
    .byte v, ... / .half v, ... / .word v, ... / .dword v, ...
    .asciz "str" / .ascii "str" / .space n / .align n   (data only)
    label:  instruction
    add rd, rs1, rs2        ld rd, 16(sp)      sw t0, off(a1)
    beq a0, a1, label       jal label          li t0, 0x1234
    la a0, buffer           lui t0, %hi(sym)   addi t0, t0, %lo(sym)
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.asm.program import InstructionSlot, Program
from repro.errors import AssemblerError, EncodingError
from repro.isa.compressed import compress
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.pseudo import (
    PC_RELATIVE_PSEUDOS,
    SIMPLE_PSEUDOS,
    expand_pseudo,
)
from repro.isa.spec import INSTRUCTION_SPECS, LOADS, STORES, parse_register

DEFAULT_TEXT_BASE = 0x10000

_MEM_OPERAND = re.compile(r"^(.*)\((\w+)\)$")
_LABEL_DEF = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_SYMBOL = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_HI_LO = re.compile(r"^%(hi|lo)\(([^()]+)\)$")

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
            "\\": "\\", "'": "'", '"': '"'}


@dataclass
class _Fixup:
    """A label-dependent statement finalized in pass 2."""

    kind: str            # 'branch' | 'jump' | 'la' | 'instr'
    mnemonic: str
    operands: list[str]
    line_no: int
    offset: int          # text offset of the first emitted byte
    size: int            # total bytes (4, or 8 for la)


class Assembler:
    """See module docstring.

    Args:
        text_base: load address of the text section.
        compress: enable RVC compression of eligible instructions
            (the paper's RV64GC configuration vs plain RV64G).
    """

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE,
                 compress: bool = False) -> None:
        self.text_base = text_base
        self.compress = compress

    # -- public API ----------------------------------------------------

    def assemble(self, source: str, name: str = "") -> Program:
        self._symbols: dict[str, int] = {}
        self._equs: dict[str, int] = {}
        self._text = bytearray()
        self._slots: list[InstructionSlot] = []
        self._fixups: list[_Fixup] = []
        self._data = bytearray()
        self._data_fixups: list[tuple[int, int, str, int]] = []
        self._label_sites: list[tuple[str, str, int, int]] = []
        self._section = "text"

        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            self._line(raw_line, line_no)

        data_base = _align_up(self.text_base + len(self._text), 8)
        for label, section, offset, line_no in self._label_sites:
            base = self.text_base if section == "text" else data_base
            if label in self._symbols or label in self._equs:
                raise AssemblerError(f"line {line_no}: duplicate label "
                                     f"{label!r}")
            self._symbols[label] = base + offset

        self._apply_fixups()
        for offset, width, token, line_no in self._data_fixups:
            value = self._symbol_value(token, line_no)
            masked = value & ((1 << (width * 8)) - 1)
            self._data[offset:offset + width] = masked.to_bytes(width,
                                                                "little")

        entry = self._symbols.get("_start", self.text_base)
        return Program(
            text=bytes(self._text),
            data=bytes(self._data),
            text_base=self.text_base,
            data_base=data_base,
            entry=entry,
            layout=tuple(self._slots),
            symbols=dict(self._symbols),
            name=name,
        )

    # -- pass 1: line handling ------------------------------------------

    def _line(self, raw_line: str, line_no: int) -> None:
        line = _strip_comment(raw_line).strip()
        while True:
            match = _LABEL_DEF.match(line)
            if not match:
                break
            label = match.group(1)
            offset = (len(self._text) if self._section == "text"
                      else len(self._data))
            self._label_sites.append((label, self._section, offset, line_no))
            line = line[match.end():].strip()
        if not line:
            return
        if line.startswith("."):
            self._directive(line, line_no)
        else:
            self._statement(line, line_no)

    def _directive(self, line: str, line_no: int) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._section = "text"
        elif name == ".data":
            self._section = "data"
        elif name in (".globl", ".global", ".type", ".size", ".file",
                      ".option", ".attribute", ".p2align"):
            pass  # accepted and ignored
        elif name == ".equ":
            try:
                sym, value = [p.strip() for p in rest.split(",", 1)]
            except ValueError:
                raise AssemblerError(
                    f"line {line_no}: .equ needs 'name, value'") from None
            self._equs[sym] = self._number(value, line_no)
        elif name in (".byte", ".half", ".word", ".dword"):
            width = {".byte": 1, ".half": 2, ".word": 4, ".dword": 8}[name]
            self._emit_data_values(rest, width, line_no)
        elif name in (".asciz", ".ascii"):
            text = _parse_string(rest, line_no)
            blob = text.encode("latin-1")
            if name == ".asciz":
                blob += b"\x00"
            self._emit_data_bytes(blob, line_no)
        elif name in (".space", ".zero"):
            count = self._number(rest.strip(), line_no)
            if count < 0:
                raise AssemblerError(f"line {line_no}: negative .space")
            self._emit_data_bytes(bytes(count), line_no)
        elif name == ".align":
            if self._section != "data":
                raise AssemblerError(
                    f"line {line_no}: .align is only supported in .data")
            alignment = self._number(rest.strip(), line_no)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AssemblerError(
                    f"line {line_no}: .align needs a power of two")
            pad = (-len(self._data)) % alignment
            self._data.extend(bytes(pad))
        else:
            raise AssemblerError(f"line {line_no}: unknown directive {name}")

    def _emit_data_values(self, rest: str, width: int, line_no: int) -> None:
        if self._section != "data":
            raise AssemblerError(
                f"line {line_no}: data directive outside .data")
        for token in _split_operands(rest):
            if self._is_symbolic(token):
                # Symbol-valued data (e.g. a string-pointer global):
                # emit a placeholder now, patch after addresses are known.
                self._data_fixups.append(
                    (len(self._data), width, token, line_no))
                self._data.extend(bytes(width))
                continue
            value = self._number(token, line_no) & ((1 << (width * 8)) - 1)
            self._data.extend(value.to_bytes(width, "little"))

    def _emit_data_bytes(self, blob: bytes, line_no: int) -> None:
        if self._section != "data":
            raise AssemblerError(
                f"line {line_no}: data directive outside .data")
        self._data.extend(blob)

    # -- pass 1: instructions --------------------------------------------

    def _statement(self, line: str, line_no: int) -> None:
        if self._section != "text":
            raise AssemblerError(
                f"line {line_no}: instruction outside .text: {line!r}")
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operands = _split_operands(parts[1]) if len(parts) > 1 else []

        if mnemonic == "jal" and operands \
                and self._is_symbolic(operands[-1]):
            self._add_fixup("jump", mnemonic, operands, line_no, size=4)
            return
        if mnemonic != "jal" and mnemonic in PC_RELATIVE_PSEUDOS \
                or self._is_label_branch(mnemonic, operands):
            self._add_fixup("branch", mnemonic, operands, line_no, size=4)
            return
        if mnemonic == "la":
            self._add_fixup("la", mnemonic, operands, line_no, size=8)
            return
        if self._uses_hi_lo(operands):
            self._add_fixup("instr", mnemonic, operands, line_no, size=4)
            return

        if mnemonic in SIMPLE_PSEUDOS:
            for instr in self._expand_simple(mnemonic, operands, line_no):
                self._emit(instr)
            return

        instr = self._parse_instruction(mnemonic, operands, line_no)
        self._emit(instr)

    def _is_label_branch(self, mnemonic: str, operands: list[str]) -> bool:
        if mnemonic not in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            return False
        return bool(operands) and self._is_symbolic(operands[-1])

    def _is_symbolic(self, token: str) -> bool:
        token = token.split("+")[0].split("-")[0].strip() or token
        if token in self._equs:
            return False
        if _SYMBOL.match(token) and not _is_register_name(token):
            return True
        return False

    @staticmethod
    def _uses_hi_lo(operands: list[str]) -> bool:
        return any(_HI_LO.match(op) or _HI_LO.match(_memory_imm(op) or "")
                   for op in operands)

    def _add_fixup(self, kind: str, mnemonic: str, operands: list[str],
                   line_no: int, size: int) -> None:
        self._fixups.append(_Fixup(kind, mnemonic, operands, line_no,
                                   offset=len(self._text), size=size))
        start = len(self._text)
        self._text.extend(bytes(size))
        for sub in range(size // 4):
            self._slots.append(InstructionSlot(offset=start + sub * 4,
                                               size=4))

    def _expand_simple(self, mnemonic: str, operands: list[str],
                       line_no: int) -> list[Instruction]:
        values: list[int] = []
        for i, token in enumerate(operands):
            if _is_register_name(token):
                values.append(parse_register(token))
            else:
                values.append(self._number(token, line_no))
        try:
            return expand_pseudo(mnemonic, values)
        except EncodingError as exc:
            raise AssemblerError(f"line {line_no}: {exc}") from None

    def _parse_instruction(self, mnemonic: str, operands: list[str],
                           line_no: int) -> Instruction:
        if mnemonic not in INSTRUCTION_SPECS:
            raise AssemblerError(
                f"line {line_no}: unknown instruction {mnemonic!r}")
        fmt = INSTRUCTION_SPECS[mnemonic][0]
        try:
            if mnemonic in ("ecall", "ebreak", "fence"):
                _expect(operands, 0, mnemonic, line_no)
                return Instruction(mnemonic)
            if mnemonic in LOADS:
                _expect(operands, 2, mnemonic, line_no)
                imm, base = self._memory(operands[1], line_no)
                return Instruction(mnemonic, rd=parse_register(operands[0]),
                                   rs1=base, imm=imm)
            if mnemonic in STORES:
                _expect(operands, 2, mnemonic, line_no)
                imm, base = self._memory(operands[1], line_no)
                return Instruction(mnemonic, rs2=parse_register(operands[0]),
                                   rs1=base, imm=imm)
            if mnemonic == "jalr":
                if len(operands) == 1:
                    return Instruction("jalr", rd=1,
                                       rs1=parse_register(operands[0]), imm=0)
                _expect(operands, 3, mnemonic, line_no)
                return Instruction("jalr", rd=parse_register(operands[0]),
                                   rs1=parse_register(operands[1]),
                                   imm=self._number(operands[2], line_no))
            if fmt == "R":
                _expect(operands, 3, mnemonic, line_no)
                return Instruction(mnemonic,
                                   rd=parse_register(operands[0]),
                                   rs1=parse_register(operands[1]),
                                   rs2=parse_register(operands[2]))
            if fmt in ("I", "SHIFT64", "SHIFT32"):
                _expect(operands, 3, mnemonic, line_no)
                return Instruction(mnemonic,
                                   rd=parse_register(operands[0]),
                                   rs1=parse_register(operands[1]),
                                   imm=self._number(operands[2], line_no))
            if fmt == "B":
                _expect(operands, 3, mnemonic, line_no)
                return Instruction(mnemonic,
                                   rs1=parse_register(operands[0]),
                                   rs2=parse_register(operands[1]),
                                   imm=self._number(operands[2], line_no))
            if fmt in ("U", "J"):
                _expect(operands, 2, mnemonic, line_no)
                return Instruction(mnemonic,
                                   rd=parse_register(operands[0]),
                                   imm=self._number(operands[1], line_no))
        except EncodingError as exc:
            raise AssemblerError(f"line {line_no}: {exc}") from None
        raise AssemblerError(f"line {line_no}: cannot parse {mnemonic}")

    def _emit(self, instr: Instruction) -> None:
        if self.compress:
            halfword = compress(instr)
            if halfword is not None:
                self._slots.append(
                    InstructionSlot(offset=len(self._text), size=2))
                self._text.extend(halfword.to_bytes(2, "little"))
                return
        self._slots.append(InstructionSlot(offset=len(self._text), size=4))
        self._text.extend(encode(instr).to_bytes(4, "little"))

    # -- pass 2: fixups ---------------------------------------------------

    def _apply_fixups(self) -> None:
        for fixup in self._fixups:
            pc = self.text_base + fixup.offset
            words = self._resolve_fixup(fixup, pc)
            blob = b"".join(encode(w).to_bytes(4, "little") for w in words)
            if len(blob) != fixup.size:
                raise AssemblerError(
                    f"line {fixup.line_no}: fixup size mismatch")
            self._text[fixup.offset:fixup.offset + fixup.size] = blob

    def _resolve_fixup(self, fixup: _Fixup, pc: int) -> list[Instruction]:
        line_no = fixup.line_no
        name = fixup.mnemonic
        ops = fixup.operands
        try:
            if fixup.kind == "la":
                _expect(ops, 2, name, line_no)
                rd = parse_register(ops[0])
                address = self._symbol_value(ops[1], line_no)
                hi = (address + 0x800) >> 12
                lo = address - (hi << 12)
                return [Instruction("lui", rd=rd, imm=hi & 0xFFFFF),
                        Instruction("addiw", rd=rd, rs1=rd, imm=lo)]
            if fixup.kind == "jump":
                rd = 1 if len(ops) == 1 else parse_register(ops[0])
                target = self._symbol_value(ops[-1], line_no)
                return [Instruction("jal", rd=rd, imm=target - pc)]
            if fixup.kind == "branch":
                return self._resolve_branch(name, ops, pc, line_no)
            if fixup.kind == "instr":
                resolved = [self._resolve_hi_lo(op, line_no) for op in ops]
                return [self._parse_instruction(name, resolved, line_no)]
        except EncodingError as exc:
            raise AssemblerError(f"line {line_no}: {exc}") from None
        raise AssemblerError(f"line {line_no}: unhandled fixup {fixup.kind}")

    def _resolve_branch(self, name: str, ops: list[str], pc: int,
                        line_no: int) -> list[Instruction]:
        target = self._symbol_value(ops[-1], line_no)
        offset = target - pc

        if name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            _expect(ops, 3, name, line_no)
            return [Instruction(name, rs1=parse_register(ops[0]),
                                rs2=parse_register(ops[1]), imm=offset)]
        if name in ("j", "tail"):
            _expect(ops, 1, name, line_no)
            return [Instruction("jal", rd=0, imm=offset)]
        if name == "call":
            _expect(ops, 1, name, line_no)
            return [Instruction("jal", rd=1, imm=offset)]
        if name == "jal":  # one-operand pseudo form
            return [Instruction("jal", rd=1, imm=offset)]
        zero_compares = {"beqz": ("beq", False), "bnez": ("bne", False),
                         "bltz": ("blt", False), "bgez": ("bge", False),
                         "blez": ("bge", True), "bgtz": ("blt", True)}
        if name in zero_compares:
            _expect(ops, 2, name, line_no)
            real, reversed_ = zero_compares[name]
            rs = parse_register(ops[0])
            rs1, rs2 = (0, rs) if reversed_ else (rs, 0)
            return [Instruction(real, rs1=rs1, rs2=rs2, imm=offset)]
        swapped = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}
        if name in swapped:
            _expect(ops, 3, name, line_no)
            return [Instruction(swapped[name], rs1=parse_register(ops[1]),
                                rs2=parse_register(ops[0]), imm=offset)]
        raise AssemblerError(f"line {line_no}: unknown branch pseudo {name}")

    # -- operand parsing ----------------------------------------------------

    def _memory(self, token: str, line_no: int) -> tuple[int, int]:
        match = _MEM_OPERAND.match(token.strip())
        if not match:
            raise AssemblerError(
                f"line {line_no}: expected imm(reg), got {token!r}")
        imm_text = match.group(1).strip() or "0"
        hi_lo = _HI_LO.match(imm_text)
        if hi_lo:
            imm = self._resolve_hi_lo_value(hi_lo, line_no)
        else:
            imm = self._number(imm_text, line_no)
        return imm, parse_register(match.group(2))

    def _resolve_hi_lo(self, token: str, line_no: int) -> str:
        mem = _MEM_OPERAND.match(token.strip())
        if mem and _is_register_name(mem.group(2)):
            inner = _HI_LO.match(mem.group(1).strip())
            if inner:
                value = self._resolve_hi_lo_value(inner, line_no)
                return f"{value}({mem.group(2)})"
            return token
        match = _HI_LO.match(token.strip())
        if match:
            return str(self._resolve_hi_lo_value(match, line_no))
        return token

    def _resolve_hi_lo_value(self, match: re.Match, line_no: int) -> int:
        address = self._symbol_value(match.group(2).strip(), line_no)
        hi = (address + 0x800) >> 12
        if match.group(1) == "hi":
            return hi & 0xFFFFF
        return address - (hi << 12)

    def _symbol_value(self, token: str, line_no: int) -> int:
        token = token.strip()
        for sep in ("+", "-"):
            idx = token.find(sep, 1)
            if idx > 0:
                base = self._symbol_value(token[:idx], line_no)
                delta = self._number(token[idx + 1:], line_no)
                return base + delta if sep == "+" else base - delta
        if token in self._symbols:
            return self._symbols[token]
        if token in self._equs:
            return self._equs[token]
        try:
            return self._number(token, line_no)
        except AssemblerError:
            raise AssemblerError(
                f"line {line_no}: undefined symbol {token!r}") from None

    def _number(self, token: str, line_no: int) -> int:
        token = token.strip()
        if token in self._equs:
            return self._equs[token]
        if len(token) >= 3 and token.startswith("'") and token.endswith("'"):
            inner = token[1:-1]
            if inner.startswith("\\"):
                if inner[1:] not in _ESCAPES:
                    raise AssemblerError(
                        f"line {line_no}: bad escape {token!r}")
                return ord(_ESCAPES[inner[1:]])
            if len(inner) == 1:
                return ord(inner)
            raise AssemblerError(f"line {line_no}: bad char literal {token!r}")
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblerError(
                f"line {line_no}: expected a number, got {token!r}"
            ) from None


def assemble(source: str, name: str = "",
             text_base: int = DEFAULT_TEXT_BASE,
             compress: bool = False) -> Program:
    """One-shot convenience wrapper around :class:`Assembler`."""
    return Assembler(text_base=text_base, compress=compress) \
        .assemble(source, name=name)


# -- helpers ------------------------------------------------------------


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        if not in_string:
            if ch == "#":
                break
            if ch == "/" and i + 1 < len(line) and line[i + 1] == "/":
                break
        out.append(ch)
        i += 1
    return "".join(out)


def _split_operands(text: str) -> list[str]:
    operands = []
    depth = 0
    current = []
    in_string = False
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if ch == "(" and not in_string:
            depth += 1
        elif ch == ")" and not in_string:
            depth -= 1
        if ch == "," and depth == 0 and not in_string:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def _expect(operands: list[str], count: int, mnemonic: str,
            line_no: int) -> None:
    if len(operands) != count:
        raise AssemblerError(
            f"line {line_no}: {mnemonic} expects {count} operands, "
            f"got {len(operands)}"
        )


def _memory_imm(token: str) -> str | None:
    match = _MEM_OPERAND.match(token.strip())
    return match.group(1).strip() if match else None


def _is_register_name(token: str) -> bool:
    try:
        parse_register(token)
        return True
    except EncodingError:
        return False


def _parse_string(rest: str, line_no: int) -> str:
    rest = rest.strip()
    if len(rest) < 2 or not rest.startswith('"') or not rest.endswith('"'):
        raise AssemblerError(f"line {line_no}: expected a quoted string")
    body = rest[1:-1]
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            if nxt in _ESCAPES:
                out.append(_ESCAPES[nxt])
                i += 2
                continue
            raise AssemblerError(f"line {line_no}: bad escape \\{nxt}")
        out.append(ch)
        i += 1
    return "".join(out)


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
