"""Operating-condition model for PUF evaluation.

Arbiter PUF reliability depends on the operating point: higher temperature
and lower supply voltage increase jitter at the arbiter latch, flipping
marginal response bits.  The paper's Key Management Unit even floats the
idea of keys that only reconstruct "at a specific temperature, frequency,
or altitude" (§III.2) — this model is what such a policy would hook into.

The model is deliberately simple: evaluation noise sigma is the nominal
sigma multiplied by a factor derived from the distance to the nominal
operating point.  The constants follow the commonly reported ~2-3x
noise growth of delay PUFs across the commercial temperature range.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigError


@dataclass(frozen=True)
class Environment:
    """An operating point for a device.

    Attributes:
        temperature_c: die temperature in Celsius.
        voltage: core supply in volts.
        frequency_mhz: clock of the PUF evaluation logic (the paper's
            prototype runs everything at 25 MHz).
    """

    temperature_c: float = 25.0
    voltage: float = 1.0
    frequency_mhz: float = 25.0

    #: per-degree noise growth away from 25 C (fraction of nominal sigma)
    TEMPERATURE_COEFF = 0.02
    #: per-volt noise growth away from 1.0 V
    VOLTAGE_COEFF = 1.5

    def noise_scale(self) -> float:
        """Multiplier applied to the PUF's nominal evaluation-noise sigma.

        1.0 at the nominal point (25 C, 1.0 V); grows linearly with
        distance from it.  Always >= 0.25 so the model never becomes
        noiseless at exotic corners.
        """
        temp_term = abs(self.temperature_c - 25.0) * self.TEMPERATURE_COEFF
        volt_term = abs(self.voltage - 1.0) * self.VOLTAGE_COEFF
        return max(0.25, 1.0 + temp_term + volt_term)

    def validate(self) -> "Environment":
        if self.temperature_c < -273.15:
            raise ConfigError(
                f"temperature_c {self.temperature_c!r} is below absolute "
                f"zero")
        if self.voltage <= 0:
            raise ConfigError("voltage must be positive")
        if self.frequency_mhz <= 0:
            raise ConfigError("frequency_mhz must be positive")
        return self

    def describe(self) -> str:
        """Compact display form ("85C/0.90V") for tables and logs."""
        return f"{self.temperature_c:g}C/{self.voltage:.2f}V"

    @classmethod
    def from_dict(cls, data: dict) -> "Environment":
        """Parse one ``environments:`` entry of the sweep JSON dialect.

        Every key is optional and defaults to the nominal operating
        point; ``{}`` is the nominal environment itself.
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"an environment must be a JSON object, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown environment keys {sorted(unknown)}; "
                f"known: {sorted(known)}")
        values = {}
        for name, value in data.items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise ConfigError(
                    f"environment {name} must be a number, got {value!r}")
            values[name] = float(value)
        return cls(**values).validate()


#: The nominal operating point used throughout tests and benchmarks.
NOMINAL = Environment()
