"""Standard PUF quality metrics.

These are the figures of merit every PUF paper reports (Maiti et al.):

* **uniformity** — fraction of '1' responses of one device over a challenge
  set; ideal 0.5.
* **inter-chip uniqueness** — mean pairwise fractional Hamming distance of
  responses between devices on the same challenges; ideal 0.5.
* **intra-chip reliability** — 1 - mean fractional Hamming distance between
  repeated evaluations on the same device; ideal 1.0.
* **bit-aliasing** — per-challenge fraction of devices answering '1';
  ideal 0.5 for every challenge.

The ablation bench `test_ablation_puf_reliability` sweeps environment and
voting policy through these metrics.
"""

from __future__ import annotations

from statistics import mean

from repro.errors import ConfigError
from repro.puf.arbiter import ArbiterPuf
from repro.puf.environment import NOMINAL, Environment


def _responses(puf: ArbiterPuf, challenges: list[int],
               environment: Environment) -> list[int]:
    return [puf.evaluate(c, environment) for c in challenges]


def uniformity(puf: ArbiterPuf, challenges: list[int],
               environment: Environment = NOMINAL) -> float:
    """Fraction of 1-bits in the response set (ideal 0.5)."""
    if not challenges:
        raise ConfigError("challenge set must be non-empty")
    responses = _responses(puf, challenges, environment)
    return sum(responses) / len(responses)


def inter_chip_uniqueness(pufs: list[ArbiterPuf], challenges: list[int],
                          environment: Environment = NOMINAL) -> float:
    """Mean pairwise fractional Hamming distance between devices (ideal 0.5)."""
    if len(pufs) < 2:
        raise ConfigError("need at least two devices")
    if not challenges:
        raise ConfigError("challenge set must be non-empty")
    all_responses = [_responses(p, challenges, environment) for p in pufs]
    distances = []
    for i in range(len(pufs)):
        for j in range(i + 1, len(pufs)):
            diff = sum(a != b for a, b in
                       zip(all_responses[i], all_responses[j]))
            distances.append(diff / len(challenges))
    return mean(distances)


def intra_chip_reliability(puf: ArbiterPuf, challenges: list[int],
                           repeats: int = 10,
                           environment: Environment = NOMINAL) -> float:
    """1 - mean fractional Hamming distance across repeated reads (ideal 1.0)."""
    if repeats < 2:
        raise ConfigError("need at least two repeats")
    if not challenges:
        raise ConfigError("challenge set must be non-empty")
    reference = _responses(puf, challenges, environment)
    distances = []
    for _ in range(repeats - 1):
        again = _responses(puf, challenges, environment)
        diff = sum(a != b for a, b in zip(reference, again))
        distances.append(diff / len(challenges))
    return 1.0 - mean(distances)


def bit_aliasing(pufs: list[ArbiterPuf], challenges: list[int],
                 environment: Environment = NOMINAL) -> list[float]:
    """Per-challenge fraction of devices answering '1' (ideal 0.5 each)."""
    if not pufs:
        raise ConfigError("need at least one device")
    if not challenges:
        raise ConfigError("challenge set must be non-empty")
    per_challenge = []
    for challenge in challenges:
        ones = sum(p.evaluate(challenge, environment) for p in pufs)
        per_challenge.append(ones / len(pufs))
    return per_challenge


def key_failure_probability(readouts: list[bytes]) -> float:
    """Fraction of readouts that differ from the majority readout.

    Feed it repeated :meth:`PufKeyGenerator.generate` /
    ``generate_raw`` outputs to estimate how often key reconstruction
    would fail under a given voting policy and environment.
    """
    if not readouts:
        raise ConfigError("need at least one readout")
    counts: dict[bytes, int] = {}
    for r in readouts:
        counts[r] = counts.get(r, 0) + 1
    majority = max(counts.values())
    return 1.0 - majority / len(readouts)
