"""Physical unclonable function (PUF) substrate.

The paper's prototype uses 32 arbiter PUF instances, each taking an 8-bit
challenge and producing a 1-bit response (Table I), to give every device a
32-bit PUF key.  The real thing lives in FPGA fabric; here we implement the
standard *additive linear delay model* of the arbiter PUF (Lim et al.,
"Extracting secret keys from integrated circuits", 2005), which is the
accepted behavioural model for this circuit:

* each of the ``n`` stages contributes a delay difference that depends on
  its challenge bit;
* the final sign of the accumulated delay difference decides the response
  bit at the arbiter latch;
* per-device Gaussian process variation makes the delay vector unique;
* per-evaluation Gaussian noise (scaled by environment: temperature,
  voltage) makes responses *mostly* stable — which is why the PUF Key
  Generator uses majority voting.

Modules
-------
:mod:`repro.puf.arbiter`        the delay-model arbiter PUF
:mod:`repro.puf.environment`    operating-condition model (noise scaling)
:mod:`repro.puf.response`       challenge–response protocol helpers
:mod:`repro.puf.key_generator`  the paper's PUF Key Generator (PKG)
:mod:`repro.puf.metrics`        standard PUF quality metrics
"""

from repro.puf.arbiter import ArbiterPuf, PufArray
from repro.puf.environment import Environment, NOMINAL
from repro.puf.response import ChallengeResponsePair, collect_crps, verify_crps
from repro.puf.key_generator import PufKeyGenerator, PufKeyReadout
from repro.puf.metrics import (
    bit_aliasing,
    inter_chip_uniqueness,
    intra_chip_reliability,
    key_failure_probability,
    uniformity,
)

__all__ = [
    "ArbiterPuf",
    "PufArray",
    "Environment",
    "NOMINAL",
    "ChallengeResponsePair",
    "collect_crps",
    "verify_crps",
    "PufKeyGenerator",
    "PufKeyReadout",
    "uniformity",
    "inter_chip_uniqueness",
    "intra_chip_reliability",
    "bit_aliasing",
    "key_failure_probability",
]
