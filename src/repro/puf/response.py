"""Challenge–response protocol helpers.

PUF-based systems authenticate by challenge–response (paper §II.B): the
verifier keeps a table of challenge–response pairs (CRPs) recorded at
enrollment and later checks that the device reproduces the enrolled
responses.  These helpers generate deterministic challenge sets and collect
CRPs from a :class:`repro.puf.arbiter.PufArray`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prng import Xoshiro256StarStar
from repro.errors import ConfigError
from repro.puf.arbiter import PufArray
from repro.puf.environment import NOMINAL, Environment


@dataclass(frozen=True)
class ChallengeResponsePair:
    """One enrolled CRP for a PUF array: per-instance challenges plus the
    packed response word observed at enrollment."""

    challenges: tuple[int, ...]
    response: int


def challenge_set(width: int, n_stages: int, count: int,
                  seed: int = 0x4352) -> list[list[int]]:
    """``count`` deterministic challenge vectors for a ``width``-instance
    array of ``n_stages``-bit PUFs.

    The same seed always yields the same challenge vectors, so the software
    source and the hardware agree on which challenges form the PUF key
    without communicating them (they are part of the enrollment record).
    """
    if count < 1:
        raise ConfigError("count must be positive")
    gen = Xoshiro256StarStar(seed)
    limit = (1 << n_stages) - 1
    return [
        [gen.randint(0, limit) for _ in range(width)]
        for _ in range(count)
    ]


def collect_crps(array: PufArray, count: int, seed: int = 0x4352,
                 votes: int = 11,
                 environment: Environment = NOMINAL,
                 ) -> list[ChallengeResponsePair]:
    """Enroll ``count`` CRPs from ``array`` using majority-voted reads."""
    pairs = []
    for challenges in challenge_set(array.width, array.n_stages, count, seed):
        response = array.evaluate_majority(challenges, votes, environment)
        pairs.append(
            ChallengeResponsePair(tuple(challenges), response)
        )
    return pairs


def verify_crps(array: PufArray, pairs: list[ChallengeResponsePair],
                votes: int = 11,
                environment: Environment = NOMINAL,
                max_mismatch_bits: int = 0) -> bool:
    """Check that ``array`` reproduces the enrolled responses.

    ``max_mismatch_bits`` > 0 tolerates that many flipped bits across the
    whole CRP set (useful at harsh operating points).
    """
    mismatches = 0
    for pair in pairs:
        observed = array.evaluate_majority(list(pair.challenges), votes,
                                           environment)
        mismatches += _popcount(observed ^ pair.response)
    return mismatches <= max_mismatch_bits


def _popcount(x: int) -> int:
    return bin(x).count("1")
