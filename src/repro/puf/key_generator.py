"""The PUF Key Generator (PKG) — paper §III.2.

The PKG turns the physical PUF into a stable *PUF key*: it evaluates the
PUF array on a fixed, enrollment-time challenge set with majority voting
and packs the response bits into a key.  The paper's prototype uses
32 instances x 8-bit challenges x 1-bit responses = a 32-bit PUF key
(Table I); wider keys simply use more challenge vectors per instance.

Reliability screening
---------------------
Majority voting alone cannot stabilize a response whose delay margin is
near zero (flip probability ~0.5 regardless of votes).  Deployed delay-PUF
key generators therefore *screen* challenges at enrollment, keeping only
those with a wide margin ("dark-bit masking").  We reproduce that: at
construction (= enrollment), each instance walks a seeded challenge stream
and keeps the first challenge whose noiseless delay margin exceeds
``margin_sigmas`` times the nominal noise sigma.  Using the model's margin
directly (instead of repeated physical reads) keeps enrollment
deterministic per device, which is what a stored enrollment record gives
real systems.

The PKG also carries the cycle-cost model used by the HDE: evaluating one
challenge costs ``n_stages + ARBITER_LATCH_CYCLES`` cycles per vote
(the edge must traverse every stage before the arbiter latches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prng import Xoshiro256StarStar
from repro.errors import ConfigError
from repro.puf.arbiter import PufArray
from repro.puf.environment import NOMINAL, Environment

#: Cycles for the arbiter latch to settle after the racing edges arrive.
ARBITER_LATCH_CYCLES = 2

#: Default reliability-screening threshold: keep challenges whose noiseless
#: delay margin is at least this many nominal noise sigmas.
MARGIN_SIGMAS = 4.0

#: Candidates examined per key bit before falling back to the best seen.
MAX_SCREEN_ATTEMPTS = 64


@dataclass(frozen=True)
class PufKeyReadout:
    """Result of one PKG key generation."""

    key: bytes
    cycles: int
    votes: int


class PufKeyGenerator:
    """Stabilized key readout from a :class:`PufArray`.

    Args:
        array: the physical PUF block.
        key_bits: size of the PUF key; must be a multiple of the array
            width (each challenge vector yields ``width`` bits).
        challenge_seed: selects the candidate challenge stream; the chosen
            challenges are the device's enrollment record, not a secret.
        votes: majority votes per response bit at readout time.
        margin_sigmas: enrollment screening threshold (see module docs);
            pass 0 to disable screening (used by reliability ablations).
    """

    def __init__(self, array: PufArray, key_bits: int = 32,
                 challenge_seed: int = 0x4352, votes: int = 11,
                 margin_sigmas: float = MARGIN_SIGMAS) -> None:
        if key_bits % array.width != 0:
            raise ConfigError(
                f"key_bits ({key_bits}) must be a multiple of the array "
                f"width ({array.width})"
            )
        if votes < 1 or votes % 2 == 0:
            raise ConfigError("votes must be a positive odd number")
        if margin_sigmas < 0:
            raise ConfigError("margin_sigmas must be non-negative")
        self.array = array
        self.key_bits = key_bits
        self.votes = votes
        self.challenge_seed = challenge_seed
        self.margin_sigmas = margin_sigmas
        self._challenges = self._enroll()

    def _enroll(self) -> list[list[int]]:
        """Select one screened challenge per (vector, instance) pair."""
        gen = Xoshiro256StarStar(self.challenge_seed)
        limit = (1 << self.array.n_stages) - 1
        vectors = []
        for _ in range(self.key_bits // self.array.width):
            vector = []
            for instance in self.array.instances:
                threshold = self.margin_sigmas * instance.noise_sigma
                best_challenge = 0
                best_margin = -1.0
                for _ in range(MAX_SCREEN_ATTEMPTS):
                    candidate = gen.randint(0, limit)
                    margin = abs(instance.delay_difference(candidate))
                    if margin > best_margin:
                        best_margin = margin
                        best_challenge = candidate
                    if margin >= threshold:
                        break
                vector.append(best_challenge)
            vectors.append(vector)
        return vectors

    @property
    def challenges(self) -> list[list[int]]:
        """The enrolled challenge matrix (one vector per key word)."""
        return [list(v) for v in self._challenges]

    def generate(self, environment: Environment = NOMINAL) -> PufKeyReadout:
        """Read the PUF key (majority-voted) at ``environment``."""
        key_value = 0
        for i, challenges in enumerate(self._challenges):
            word = self.array.evaluate_majority(challenges, self.votes,
                                                environment)
            key_value |= word << (i * self.array.width)
        key = key_value.to_bytes((self.key_bits + 7) // 8, "little")
        return PufKeyReadout(key=key, cycles=self.cycle_cost(),
                             votes=self.votes)

    def generate_raw(self, environment: Environment = NOMINAL) -> bytes:
        """Single-shot (no voting) readout — used by reliability studies
        to expose the raw bit error rate that voting hides."""
        key_value = 0
        for i, challenges in enumerate(self._challenges):
            word = self.array.evaluate(challenges, environment)
            key_value |= word << (i * self.array.width)
        return key_value.to_bytes((self.key_bits + 7) // 8, "little")

    def cycle_cost(self) -> int:
        """HDE cycle cost of one full key generation.

        Per challenge vector: all ``width`` instances race in parallel, so
        one vote costs ``n_stages + ARBITER_LATCH_CYCLES`` cycles; votes
        are sequential re-evaluations.  Enrollment screening is a one-time
        provisioning cost and is not charged here.
        """
        per_vote = self.array.n_stages + ARBITER_LATCH_CYCLES
        return len(self._challenges) * self.votes * per_vote
