"""Arbiter PUF under the additive linear delay model.

An arbiter PUF races a rising edge through two nominally identical paths of
``n`` switch stages; the challenge bit of each stage decides whether the
two signals go straight or cross.  An arbiter latch at the end outputs '1'
if the top signal wins, '0' otherwise (paper Fig. 1).

The standard behavioural model (Lim et al. 2005): the final delay
difference is a linear function of the *parity-transformed* challenge,

    delta(c) = w . phi(c),     phi_i = prod_{j>=i} (1 - 2 c_j),  phi_n = 1

where ``w`` is an (n+1)-vector of per-stage delay differences unique to the
physical instance.  The response is ``1`` if ``delta + noise > 0``.

Fabrication draws ``w`` from a per-device Gaussian; evaluation adds fresh
Gaussian noise whose sigma scales with the operating environment.  This
reproduces every property the paper relies on: per-device uniqueness,
challenge addressability, and slight instability that the PUF Key
Generator's majority voting must absorb.
"""

from __future__ import annotations

from repro.crypto.prng import Xoshiro256StarStar
from repro.errors import ConfigError
from repro.puf.environment import NOMINAL, Environment

#: Standard deviation of per-stage delay differences (arbitrary time units).
FABRICATION_SIGMA = 1.0

#: Nominal evaluation-noise sigma, as a fraction of FABRICATION_SIGMA.
#: ~0.04 reproduces the few-percent raw bit error rate typical of
#: FPGA arbiter PUFs at the nominal operating point.
NOISE_SIGMA = 0.04


class ArbiterPuf:
    """A single arbiter PUF instance: n-bit challenge -> 1-bit response.

    Args:
        n_stages: number of switch stages (challenge bits). The paper's
            prototype uses 8.
        seed: fabrication seed; two instances with different seeds model
            two physically distinct circuits.
        noise_sigma: evaluation-noise sigma at the nominal environment.
    """

    def __init__(self, n_stages: int = 8, seed: int = 0,
                 noise_sigma: float = NOISE_SIGMA) -> None:
        if n_stages < 1:
            raise ConfigError("arbiter PUF needs at least one stage")
        self.n_stages = n_stages
        self.noise_sigma = noise_sigma
        fab = Xoshiro256StarStar(seed)
        # w has one weight per stage plus the arbiter-offset term.
        self._weights = [fab.gauss(0.0, FABRICATION_SIGMA)
                         for _ in range(n_stages + 1)]
        self._noise = Xoshiro256StarStar(seed * 0x9E3779B9 + 0x7F4A7C15)

    def _phi(self, challenge: int) -> list[int]:
        """Parity transform of an integer challenge (bit i = stage i)."""
        bits = [(challenge >> i) & 1 for i in range(self.n_stages)]
        phi = [0] * (self.n_stages + 1)
        phi[self.n_stages] = 1
        acc = 1
        for i in range(self.n_stages - 1, -1, -1):
            acc *= 1 - 2 * bits[i]
            phi[i] = acc
        return phi

    def delay_difference(self, challenge: int) -> float:
        """Noiseless delay difference delta(c); the sign is the ideal
        response.  Exposed for metrics and for tests that need the margin."""
        self._check_challenge(challenge)
        phi = self._phi(challenge)
        return sum(w * p for w, p in zip(self._weights, phi))

    def evaluate(self, challenge: int,
                 environment: Environment = NOMINAL) -> int:
        """One noisy evaluation: returns the response bit (0 or 1)."""
        delta = self.delay_difference(challenge)
        sigma = self.noise_sigma * environment.noise_scale()
        noisy = delta + self._noise.gauss(0.0, sigma)
        return 1 if noisy > 0 else 0

    def evaluate_majority(self, challenge: int, votes: int = 11,
                          environment: Environment = NOMINAL) -> int:
        """Majority vote over ``votes`` fresh evaluations (odd count)."""
        if votes < 1 or votes % 2 == 0:
            raise ConfigError("votes must be a positive odd number")
        ones = sum(self.evaluate(challenge, environment)
                   for _ in range(votes))
        return 1 if ones * 2 > votes else 0

    def _check_challenge(self, challenge: int) -> None:
        if not 0 <= challenge < (1 << self.n_stages):
            raise ConfigError(
                f"challenge {challenge:#x} out of range for "
                f"{self.n_stages}-stage PUF"
            )


class PufArray:
    """The paper's PUF block: ``width`` arbiter instances evaluated in
    parallel, one response bit each (Table I: 32 x 8-bit challenge ->
    1-bit response).

    Each instance is a physically separate circuit, so each gets its own
    fabrication seed derived from the device seed.
    """

    def __init__(self, width: int = 32, n_stages: int = 8,
                 device_seed: int = 0,
                 noise_sigma: float = NOISE_SIGMA) -> None:
        if width < 1:
            raise ConfigError("PufArray needs at least one instance")
        self.width = width
        self.n_stages = n_stages
        self.device_seed = device_seed
        self.instances = [
            ArbiterPuf(n_stages=n_stages,
                       seed=_instance_seed(device_seed, i),
                       noise_sigma=noise_sigma)
            for i in range(width)
        ]

    def evaluate(self, challenges: list[int],
                 environment: Environment = NOMINAL) -> int:
        """Evaluate instance ``i`` on ``challenges[i]``; returns the packed
        response word (instance i -> bit i)."""
        self._check(challenges)
        word = 0
        for i, (puf, challenge) in enumerate(zip(self.instances, challenges)):
            word |= puf.evaluate(challenge, environment) << i
        return word

    def evaluate_majority(self, challenges: list[int], votes: int = 11,
                          environment: Environment = NOMINAL) -> int:
        """Majority-voted response word (the PKG's stabilized read)."""
        self._check(challenges)
        word = 0
        for i, (puf, challenge) in enumerate(zip(self.instances, challenges)):
            word |= puf.evaluate_majority(challenge, votes, environment) << i
        return word

    def _check(self, challenges: list[int]) -> None:
        if len(challenges) != self.width:
            raise ConfigError(
                f"expected {self.width} challenges, got {len(challenges)}"
            )


def _instance_seed(device_seed: int, index: int) -> int:
    """Decorrelate per-instance fabrication seeds (SplitMix-style mix)."""
    x = (device_seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9)
    x &= 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x
