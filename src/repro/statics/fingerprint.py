"""Timing-model fingerprints.

The farm's job key deliberately excludes code version; before this
module, every committed store record was only valid while humans
remembered to bump ``KEY_SCHEMA`` after timing-model edits.
``model_fingerprint()`` closes that gap mechanically: a SHA-256 over
the normalized ASTs (:mod:`repro.statics.astnorm`) of every module
whose source text determines simulated timing or package content —
the SoC pipeline/cache/predecode stack, the HDE datapath, the default
configuration surface, and the cipher/signature identities.

Properties the tests pin down:

* **byte-stable** — two processes (or two CPython versions in CI)
  computing the fingerprint of the same tree agree;
* **formatting-blind** — comments, docstrings, and reflowing change
  nothing;
* **semantics-sensitive** — editing a latency constant, a cache
  default, or a cipher's keystream derivation changes it.

:func:`~repro.farm.spec.JobSpec.key` folds the fingerprint into every
job key (``KEY_SCHEMA`` >= 3), so a timing edit orphans stale records
the same way a schema bump always has.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.statics.astnorm import source_fingerprint

#: Modules (relative to the ``repro`` package root) whose normalized
#: AST feeds the model fingerprint.  The list is the contract: a module
#: belongs here iff editing it can change simulated cycle counts,
#: package bytes, or key derivation for an unchanged job spec.
FINGERPRINT_MODULES: tuple[str, ...] = (
    # SoC timing: pipeline charges, cache geometry/LRU, the reference
    # interpreter, the superblock compiler, counters, memory faults.
    "soc/pipeline.py",
    "soc/cache.py",
    "soc/cpu.py",
    "soc/counters.py",
    "soc/memory.py",
    "soc/soc.py",
    "soc/predecode.py",
    # HDE datapath widths and walk accounting; key derivation.
    "core/hde.py",
    "core/keys.py",
    "core/signature.py",
    # Default configuration surface (every job key embeds a config the
    # defaults of which live here).
    "core/config.py",
    # Cipher and hash identities.
    "crypto/xor_cipher.py",
    "crypto/sha256.py",
    # Protection policies: region resolution and per-region selection
    # determine the encryption map, and the opaque-predicate pass
    # determines the instruction stream itself — both change package
    # bytes and cycle counts for an unchanged job spec.
    "policy/policy.py",
    "policy/opaque.py",
)


def _package_root() -> Path:
    import repro
    return Path(repro.__file__).resolve().parent


@dataclass(frozen=True)
class FingerprintReport:
    """The combined fingerprint plus its per-module contributions."""

    fingerprint: str
    #: module (relative posix path) -> per-module digest
    modules: dict[str, str]

    def to_dict(self) -> dict:
        return {"fingerprint": self.fingerprint,
                "modules": dict(self.modules)}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data) -> "FingerprintReport":
        if not isinstance(data, dict) \
                or not isinstance(data.get("fingerprint"), str) \
                or not isinstance(data.get("modules"), dict):
            raise ValueError(
                'not a fingerprint report: expected {"fingerprint": ..., '
                '"modules": {...}}')
        return cls(fingerprint=data["fingerprint"],
                   modules=dict(data["modules"]))

    def explain(self) -> str:
        lines = [f"model fingerprint: {self.fingerprint}"]
        for name in sorted(self.modules):
            lines.append(f"  {self.modules[name][:16]}  {name}")
        return "\n".join(lines)

    def diff(self, old: "FingerprintReport") -> str:
        """Human-readable module-level diff against an older report."""
        if old.fingerprint == self.fingerprint:
            return f"fingerprints match: {self.fingerprint}"
        lines = [f"fingerprint drifted: {old.fingerprint[:16]}... -> "
                 f"{self.fingerprint[:16]}..."]
        names = sorted(set(old.modules) | set(self.modules))
        for name in names:
            was, now = old.modules.get(name), self.modules.get(name)
            if was == now:
                continue
            if was is None:
                lines.append(f"  added    {name} ({now[:16]})")
            elif now is None:
                lines.append(f"  removed  {name} (was {was[:16]})")
            else:
                lines.append(f"  changed  {name} "
                             f"({was[:16]} -> {now[:16]})")
        return "\n".join(lines)


def compute_report(root: str | Path | None = None) -> FingerprintReport:
    """Fingerprint the tree rooted at ``root`` (default: the imported
    ``repro`` package).  Uncached — callers wanting the process-wide
    memo use :func:`fingerprint_report`/:func:`model_fingerprint`."""
    base = Path(root) if root is not None else _package_root()
    modules: dict[str, str] = {}
    for rel in FINGERPRINT_MODULES:
        path = base / rel
        source = path.read_text(encoding="utf-8")
        modules[rel] = source_fingerprint(source, filename=str(path))
    combined = "\n".join(f"{name}:{modules[name]}"
                         for name in sorted(modules))
    from hashlib import sha256
    return FingerprintReport(
        fingerprint=sha256(combined.encode("utf-8")).hexdigest(),
        modules=modules)


_MEMO: FingerprintReport | None = None


def fingerprint_report() -> FingerprintReport:
    """The current tree's report, computed once per process (the
    sources cannot change under a running interpreter in any way the
    simulator would see — modules are imported exactly once)."""
    global _MEMO
    if _MEMO is None:
        _MEMO = compute_report()
    return _MEMO


def model_fingerprint() -> str:
    """The combined digest every new job key and farm record embeds."""
    return fingerprint_report().fingerprint
