"""Project-specific lint rules (see :mod:`repro.statics.lint`).

Each rule encodes one invariant this codebase already relies on by
convention; the linter turns the convention into a CI-enforced check:

* ``wallclock-in-payload`` — persisted-record payload builders
  (``to_record``/``stable_dict``/``to_json``) must be deterministic
  functions of the job key: wall-clock and RNG calls belong in the
  explicitly-volatile ``WALL_CLOCK_FIELDS`` columns, never inside the
  payload path.
* ``atomic-jsonl-rewrite`` — any whole-file write in a module handling
  ``.jsonl`` stores must go through the temp-file + ``os.replace``
  pattern (a crash mid-rewrite must leave the old file intact).
* ``schema-pinned-fields`` — the serialized field set of
  ``FarmRecord``/``JournalRecord`` is digest-pinned per schema
  constant: changing fields without bumping
  ``STORE_SCHEMA``/``JOURNAL_SCHEMA`` (and re-pinning) fails lint.
* ``span-must-finish`` — a tracer span assigned to a local must either
  be ``finish()``ed in that function or escape it (returned/stored/
  passed on); anything else leaks an unfinished span on every path.
* ``codegen-compiles`` — every superblock ``_Codegen`` emits for the
  in-repo workload suite must parse and compile cleanly (files may
  also declare ``SUPERBLOCK_SOURCES`` lists to lint emitted snippets
  directly — the fixture hook).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.statics.lint import LintRule

# --------------------------------------------------------------------------
# wallclock-in-payload


#: Function names that build persisted record payloads.
PAYLOAD_BUILDERS = frozenset({"to_record", "stable_dict", "to_json"})

#: Dotted-call suffixes that read wall clocks or entropy.
NONDETERMINISTIC_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "random.random", "random.randint", "random.randrange",
    "random.getrandbits", "uuid.uuid1", "uuid.uuid4",
})

#: Bare names that are nondeterministic when imported from these
#: modules (``from time import time`` + ``time()``).
_NONDET_FROM_IMPORTS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("datetime", "datetime"),   # datetime.now() via from-import
    ("random", "random"), ("uuid", "uuid4"), ("uuid", "uuid1"),
}


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` call targets; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class WallClockInPayloadRule(LintRule):
    name = "wallclock-in-payload"
    description = ("no wall-clock/RNG calls inside record payload "
                   "builders (to_record/stable_dict/to_json)")

    def check_file(self, path, tree, source):
        aliases = set()
        for node in tree.body:
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if (node.module, alias.name) in _NONDET_FROM_IMPORTS:
                        aliases.add(alias.asname or alias.name)
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name not in PAYLOAD_BUILDERS:
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                target = _dotted(call.func)
                if target is None:
                    continue
                tail = ".".join(target.split(".")[-2:])
                bare = target.split(".")[-1]
                if tail in NONDETERMINISTIC_CALLS or \
                        ("." not in target and bare in aliases):
                    findings.append(self.finding(
                        path, call.lineno,
                        f"{target}() inside {node.name}(): record "
                        f"payloads must be deterministic functions of "
                        f"the job key (wall-clock measurements belong "
                        f"in WALL_CLOCK_FIELDS, not the payload)"))
        return findings


# --------------------------------------------------------------------------
# atomic-jsonl-rewrite


def _has_jsonl_literal(tree: ast.Module) -> bool:
    return any(isinstance(n, ast.Constant) and isinstance(n.value, str)
               and n.value.endswith(".jsonl") for n in ast.walk(tree))


def _write_mode(call: ast.Call) -> str | None:
    """The mode string of an ``open``-style call, if literal."""
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class AtomicJsonlRewriteRule(LintRule):
    name = "atomic-jsonl-rewrite"
    description = ("whole-file writes in .jsonl-store modules must use "
                   "the temp-file + os.replace atomic pattern")
    scope = "src"   # tests construct broken store files on purpose

    def check_file(self, path, tree, source):
        if not _has_jsonl_literal(tree):
            return []
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            rewrites = []
            replaces = False
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if isinstance(func, ast.Attribute):
                    if func.attr == "replace" and \
                            _dotted(func) in ("os.replace", "replace"):
                        replaces = True
                        continue
                    if func.attr == "write_text":
                        rewrites.append(call)
                        continue
                name = _dotted(func) or ""
                if name.split(".")[-1] in ("open", "fdopen"):
                    mode = _write_mode(call)
                    if mode is not None and "w" in mode:
                        rewrites.append(call)
            if rewrites and not replaces:
                for call in rewrites:
                    findings.append(self.finding(
                        path, call.lineno,
                        f"{node.name}() rewrites a file in a .jsonl "
                        f"store module without os.replace: write to a "
                        f"temp file and os.replace it so a crash "
                        f"leaves the old file intact"))
        return findings


# --------------------------------------------------------------------------
# schema-pinned-fields


def field_set_digest(names) -> str:
    """Digest of a serialized dataclass's field-name set (order-blind:
    reordering fields does not change the wire payload of a
    ``sort_keys`` JSON dump)."""
    canon = ",".join(sorted(names))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SchemaPin:
    """One record class whose field set is pinned per schema value."""

    class_name: str
    schema_const: str
    #: schema value -> expected :func:`field_set_digest`
    digests: dict


#: Pinned field-set digests, keyed by module path suffix.  Changing a
#: record's fields without bumping its schema constant mismatches the
#: pinned digest; bumping the schema without re-pinning is flagged too,
#: so every schema change is a conscious two-line edit reviewers see.
#: Recompute a digest with
#: ``repro.statics.rules.field_set_digest(f.name for f in
#: dataclasses.fields(Cls))``.
SCHEMA_PINS: dict[str, SchemaPin] = {
    "repro/farm/store.py": SchemaPin(
        class_name="FarmRecord", schema_const="STORE_SCHEMA",
        digests={3: "fbf34d02412095e1"}),
    "repro/service/daemon/journal.py": SchemaPin(
        class_name="JournalRecord", schema_const="JOURNAL_SCHEMA",
        digests={1: "0f0745c07a85204a"}),
    # fixture hooks (linted explicitly by the test suite only)
    "fixtures/schema_pinned_fields_good.py": SchemaPin(
        class_name="PinnedRecord", schema_const="PIN_SCHEMA",
        digests={1: "61c4a384288049d0"}),
    "fixtures/schema_pinned_fields_bad.py": SchemaPin(
        class_name="PinnedRecord", schema_const="PIN_SCHEMA",
        digests={1: "61c4a384288049d0"}),
}


class SchemaPinnedFieldsRule(LintRule):
    name = "schema-pinned-fields"
    description = ("serialized-record field sets are digest-pinned per "
                   "schema constant (FarmRecord/STORE_SCHEMA, "
                   "JournalRecord/JOURNAL_SCHEMA)")

    def _pin_for(self, path: Path) -> SchemaPin | None:
        posix = path.as_posix()
        for suffix, pin in SCHEMA_PINS.items():
            if posix.endswith(suffix):
                return pin
        return None

    def check_file(self, path, tree, source):
        pin = self._pin_for(path)
        if pin is None:
            return []
        schema_value = None
        for node in tree.body:
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == pin.schema_const \
                    and isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, int):
                schema_value = node.value.value
        cls = next((n for n in tree.body
                    if isinstance(n, ast.ClassDef)
                    and n.name == pin.class_name), None)
        if cls is None or schema_value is None:
            return [self.finding(
                path, 1,
                f"expected class {pin.class_name} and constant "
                f"{pin.schema_const} (the schema pin table names "
                f"both); found "
                f"{'class' if cls is not None else 'neither' if schema_value is None else 'constant'} only")]
        names = [stmt.target.id for stmt in cls.body
                 if isinstance(stmt, ast.AnnAssign)
                 and isinstance(stmt.target, ast.Name)]
        digest = field_set_digest(names)
        expected = pin.digests.get(schema_value)
        if expected is None:
            return [self.finding(
                path, cls.lineno,
                f"{pin.schema_const}={schema_value} has no pinned "
                f"field digest: add {{{schema_value}: {digest!r}}} to "
                f"SCHEMA_PINS after reviewing the field change")]
        if digest != expected:
            return [self.finding(
                path, cls.lineno,
                f"{pin.class_name} fields changed (digest {digest}, "
                f"pinned {expected}) but {pin.schema_const} is still "
                f"{schema_value}: bump the schema constant and re-pin "
                f"so old records stop matching")]
        return []


# --------------------------------------------------------------------------
# span-must-finish


def _contains_name(node: ast.AST, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(node))


def _span_assignments(func) -> list[tuple[str, ast.Assign]]:
    """(variable, assignment) pairs whose value starts a tracer span."""
    out = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1 \
                or not isinstance(node.targets[0], ast.Name):
            continue
        for call in ast.walk(node.value):
            if isinstance(call, ast.Call) \
                    and isinstance(call.func, ast.Attribute) \
                    and call.func.attr == "start" \
                    and "tracer" in ast.unparse(
                        call.func.value).lower():
                out.append((node.targets[0].id, node))
                break
    return out


class SpanMustFinishRule(LintRule):
    name = "span-must-finish"
    description = ("a tracer span held in a local must be finish()ed "
                   "in the same function or escape it")

    def check_file(self, path, tree, source):
        findings = []
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for var, assign in _span_assignments(func):
                if self._finished_or_escapes(func, var, assign):
                    continue
                findings.append(self.finding(
                    path, assign.lineno,
                    f"span {var!r} is started but never finish()ed in "
                    f"{func.name}() and never escapes it: a crash-free "
                    f"run still leaves an unfinished span in the "
                    f"trace (wrap it in tracer.span(...) or call "
                    f"{var}.finish() on every path)"))
        return findings

    @staticmethod
    def _finished_or_escapes(func, var: str, assign: ast.Assign) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                f = node.func
                if isinstance(f, ast.Attribute) and f.attr == "finish" \
                        and isinstance(f.value, ast.Name) \
                        and f.value.id == var:
                    return True
                # passed onward (argument or keyword) = escapes
                for arg in list(node.args) + [k.value
                                              for k in node.keywords]:
                    if _contains_name(arg, var):
                        return True
            elif isinstance(node, (ast.Return, ast.Yield,
                                   ast.YieldFrom)):
                if node.value is not None \
                        and _contains_name(node.value, var):
                    return True
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set,
                                   ast.Dict)):
                if _contains_name(node, var):
                    return True
            elif isinstance(node, ast.Assign) and node is not assign:
                # stored into an attribute/subscript, or re-aliased
                if _contains_name(node.value, var):
                    return True
        return False


# --------------------------------------------------------------------------
# codegen-compiles


class CodegenCompilesRule(LintRule):
    name = "codegen-compiles"
    description = ("every superblock _Codegen emits for the workload "
                   "suite (and any SUPERBLOCK_SOURCES fixture list) "
                   "must parse and compile")

    def check_file(self, path, tree, source):
        """Fixture hook: compile entries of a module-level
        ``SUPERBLOCK_SOURCES`` list of string constants."""
        findings = []
        for node in tree.body:
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "SUPERBLOCK_SOURCES"
                    and isinstance(node.value, (ast.List, ast.Tuple))):
                continue
            for element in node.value.elts:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    continue
                try:
                    compile(element.value, "<superblock>", "exec")
                except SyntaxError as exc:
                    findings.append(self.finding(
                        path, element.lineno,
                        f"emitted superblock source does not compile: "
                        f"{exc.msg} (line {exc.lineno} of the "
                        f"snippet)"))
        return findings

    def check_project(self):
        """Compile every superblock the predecoder emits for the
        in-repo workload registry (one plain run per workload builds
        the dynamically reachable trace set)."""
        from repro.cc.driver import compile_source
        from repro.soc.predecode import predecoded_for
        from repro.soc.soc import RocketLikeSoC
        from repro.workloads import all_workloads

        pre_path = Path(__file__).resolve().parent.parent \
            / "soc" / "predecode.py"
        findings = []
        for name, workload in all_workloads().items():
            try:
                program = compile_source(workload.source,
                                         name=name).program
                soc = RocketLikeSoC(run_mode="fast")
                soc.run(program)
                pre = predecoded_for(program, soc.icache.config,
                                     soc.dcache.config)
            except Exception as exc:  # noqa: BLE001 — report, not crash
                findings.append(self.finding(
                    pre_path, 1,
                    f"workload {name!r} failed under the fast "
                    f"interpreter: {type(exc).__name__}: {exc}"))
                continue
            for pc, blk in sorted(pre.blocks.items()):
                if blk.fn is None:
                    continue   # undecodable head: no emitted source
                for check, label in ((ast.parse, "parse"),
                                     (self._compile, "compile")):
                    try:
                        check(blk.src)
                    except SyntaxError as exc:
                        findings.append(self.finding(
                            pre_path, 1,
                            f"superblock @{pc:#x} of workload "
                            f"{name!r} does not {label}: {exc.msg} "
                            f"(generated line {exc.lineno})"))
                        break
        return findings

    @staticmethod
    def _compile(src: str):
        return compile(src, "<superblock>", "exec")


#: Shipped rules, in report order.
PROJECT_RULES = (
    WallClockInPayloadRule,
    AtomicJsonlRewriteRule,
    SchemaPinnedFieldsRule,
    SpanMustFinishRule,
    CodegenCompilesRule,
)
