"""Static analysis of this repository's own source.

Two jobs live here, both consumed by the farm and by CI:

* :mod:`repro.statics.fingerprint` — a normalized-AST digest of the
  timing-semantics-bearing modules (pipeline/cache/HDE constants,
  cipher identities).  The fingerprint is folded into every farm job
  key, so editing a timing model mechanically orphans stale store
  records instead of relying on a human to bump ``KEY_SCHEMA``.
* :mod:`repro.statics.lint` — a rule-based AST linter (``eric lint``)
  with project-specific rules: wall-clock calls in record payload
  paths, non-atomic JSONL rewrites, serialized-dataclass fields that
  changed without a schema bump, tracer spans that can leak unfinished,
  and a compile check over every superblock the predecoder emits.
"""

from repro.statics.fingerprint import (FingerprintReport,
                                       fingerprint_report,
                                       model_fingerprint)
from repro.statics.lint import (Finding, LintEngine, LintRule,
                                all_rules, lint_paths)

__all__ = [
    "FingerprintReport", "fingerprint_report", "model_fingerprint",
    "Finding", "LintEngine", "LintRule", "all_rules", "lint_paths",
]
