"""The project lint engine behind ``eric lint``.

Rules are small AST visitors with project knowledge (see
:mod:`repro.statics.rules`): they guard the result store's determinism
discipline, the serialized-record schemas, the tracer's span contract,
and the predecoder's generated code.  The engine walks a file tree,
parses each ``.py`` once, and hands the tree to every file-scoped rule;
project-scoped checks (which compile workloads rather than read files)
run once per invocation.

Exit discipline mirrors any linter: no findings = success.  A file that
does not parse is itself a finding (rule ``syntax``), not a crash.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: Directories never walked: fixture snippets are deliberately bad, and
#: caches/VCS internals are not source.
EXCLUDED_DIR_NAMES = frozenset({
    "__pycache__", ".git", ".ruff_cache", ".pytest_cache", "fixtures",
})

#: Default lint roots, relative to the repository root.
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples")


@dataclass(frozen=True)
class Finding:
    """One lint hit: a rule, a location, and what is wrong there."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class LintRule:
    """Base rule.  Subclasses set ``name``/``description`` and override
    one (or both) of the check hooks.

    ``scope`` limits file checks: ``"tree"`` sees every linted file,
    ``"src"`` only files under a ``src/`` root (rules about production
    persistence discipline would otherwise flag tests that *construct*
    broken files on purpose).  Explicitly linted paths (``eric lint
    FILE``) always reach every rule — fixtures rely on that.
    """

    name = "rule"
    description = ""
    scope = "tree"

    def check_file(self, path: Path, tree: ast.Module,
                   source: str) -> "list[Finding]":
        return []

    def check_project(self) -> "list[Finding]":
        return []

    def finding(self, path: Path, line: int, message: str) -> Finding:
        return Finding(rule=self.name, path=str(path), line=line,
                       message=message)


def all_rules() -> "tuple[LintRule, ...]":
    """Fresh instances of every shipped rule, stable order."""
    from repro.statics.rules import PROJECT_RULES
    return tuple(cls() for cls in PROJECT_RULES)


def _in_src(path: Path) -> bool:
    return "src" in path.parts


def iter_python_files(root: Path):
    """Yield ``.py`` files under ``root`` (or ``root`` itself), sorted,
    skipping :data:`EXCLUDED_DIR_NAMES` directories."""
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        parts = set(path.parts)
        if parts & EXCLUDED_DIR_NAMES:
            continue
        yield path


class LintEngine:
    """Runs a rule set over paths and collects findings."""

    def __init__(self, rules: "tuple[LintRule, ...] | None" = None
                 ) -> None:
        self.rules = tuple(rules) if rules is not None else all_rules()

    def select(self, name: str) -> "LintEngine":
        """An engine restricted to the rule called ``name``."""
        chosen = tuple(r for r in self.rules if r.name == name)
        if not chosen:
            known = ", ".join(sorted(r.name for r in self.rules))
            raise ValueError(f"unknown rule {name!r}; known: {known}")
        return LintEngine(chosen)

    def run(self, paths, project_checks: bool = True
            ) -> "list[Finding]":
        """Lint ``paths`` (files or directories).  Files named
        explicitly bypass rule scoping; walked files respect it."""
        findings: list[Finding] = []
        for root in paths:
            root = Path(root)
            explicit = root.is_file()
            for path in iter_python_files(root):
                findings.extend(self._check_file(path, explicit))
        if project_checks:
            for rule in self.rules:
                findings.extend(rule.check_project())
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return findings

    def _check_file(self, path: Path, explicit: bool
                    ) -> "list[Finding]":
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Finding(rule="syntax", path=str(path),
                            line=exc.lineno or 1,
                            message=f"does not parse: {exc.msg}")]
        out: list[Finding] = []
        for rule in self.rules:
            if not explicit and rule.scope == "src" \
                    and not _in_src(path):
                continue
            out.extend(rule.check_file(path, tree, source))
        return out


def lint_paths(paths=None, rule: str | None = None,
               project_checks: bool = True) -> "list[Finding]":
    """One-call façade used by the CLI and CI: lint ``paths`` (default
    :data:`DEFAULT_ROOTS` that exist under the current directory) with
    all rules, or just ``rule``."""
    engine = LintEngine()
    if rule is not None:
        engine = engine.select(rule)
        # a single named rule is usually being debugged: still honor
        # scoping, but skip other rules' project checks implicitly
    if paths is None:
        paths = [p for p in DEFAULT_ROOTS if Path(p).exists()]
    return engine.run(paths, project_checks=project_checks)
