"""Normalized-AST canonicalization — the fingerprint's foundation.

``canonical(source)`` renders a Python module as a deterministic string
that depends on the code's *semantics-bearing shape* and nothing else:

* comments, blank lines, and formatting never appear (the AST already
  dropped them);
* docstrings are stripped (a leading string-constant statement of a
  module/class/function body is documentation, not behaviour);
* source positions (line/column) are excluded;
* version-specific AST fields that are empty on this tree
  (``type_params`` on 3.12+, ``type_comment``, ``type_ignores``) are
  skipped, so the rendering — and therefore the digest — is identical
  across the CPython versions CI runs (3.10–3.12).

Constants, names, operators, and full function bodies all contribute:
changing ``miss_penalty=24`` to ``25`` changes the rendering; reflowing
the dataclass over more lines does not.
"""

from __future__ import annotations

import ast
import hashlib

#: AST fields that never reach the canonical rendering: source
#: positions are formatting, and the commented/parametrized fields are
#: version-dependent noise (absent or empty on every module we parse).
_SKIP_FIELDS = frozenset({
    "lineno", "col_offset", "end_lineno", "end_col_offset",
    "type_comment", "type_ignores", "type_params",
})

#: Nodes whose body may lead with a docstring.
_DOC_HOSTS = (ast.Module, ast.ClassDef, ast.FunctionDef,
              ast.AsyncFunctionDef)


def _is_docstring(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str))


def strip_docstrings(tree: ast.AST) -> ast.AST:
    """Drop the leading string-constant statement from every
    module/class/function body, in place.  A body that is *only* a
    docstring keeps an ``ast.Pass()`` so it stays syntactically valid
    (the canonical form of ``def f(): "doc"`` equals ``def f(): pass``
    — both are behaviour-free)."""
    for node in ast.walk(tree):
        if isinstance(node, _DOC_HOSTS) and node.body \
                and _is_docstring(node.body[0]):
            rest = node.body[1:]
            node.body = rest if rest else [ast.Pass()]
    return tree


def _render(node, out: list[str]) -> None:
    """Append ``node``'s canonical rendering to ``out``.

    A hand-rolled :func:`ast.dump` equivalent: field names are emitted
    (so field *reordering* between Python versions cannot silently
    collide), skip-listed fields are not, and constants render via
    ``repr`` (stable for the str/bytes/int/float/bool/None/tuple
    universe the grammar allows).
    """
    if isinstance(node, ast.AST):
        out.append(type(node).__name__)
        out.append("(")
        first = True
        for name, value in ast.iter_fields(node):
            if name in _SKIP_FIELDS:
                continue
            if not first:
                out.append(",")
            first = False
            out.append(name)
            out.append("=")
            _render(value, out)
        out.append(")")
    elif isinstance(node, list):
        out.append("[")
        for i, item in enumerate(node):
            if i:
                out.append(",")
            _render(item, out)
        out.append("]")
    else:
        out.append(repr(node))


def canonical(source: str, filename: str = "<module>") -> str:
    """The canonical rendering of ``source`` (see module docstring)."""
    tree = strip_docstrings(ast.parse(source, filename=filename))
    out: list[str] = []
    _render(tree, out)
    return "".join(out)


def source_fingerprint(source: str, filename: str = "<module>") -> str:
    """SHA-256 hex digest of the canonical rendering."""
    return hashlib.sha256(
        canonical(source, filename).encode("utf-8")).hexdigest()
