"""Declarative configuration front end — the GUI stand-in.

The paper ships a graphical interface for choosing encryption options
(§III.1).  Headless reproductions get the same decision surface as a
dict/JSON schema: :func:`config_from_dict` validates and builds an
:class:`EricConfig`; :func:`describe` renders the choices a user would
see on screen.
"""

from __future__ import annotations

from repro.core.config import EncryptionMode, EricConfig
from repro.crypto.xor_cipher import registered_ciphers
from repro.errors import ConfigError
from repro.isa.fields import FIELD_CLASSES

_KNOWN_KEYS = {
    "mode", "cipher", "partial_fraction", "field_classes",
    "field_fraction", "selection_seed", "compress", "optimize", "epoch",
    "sign_data", "encrypt_data",
}


def config_from_dict(options: dict) -> EricConfig:
    """Build a validated :class:`EricConfig` from plain options.

    Accepts JSON-friendly values: mode as string, epoch as string,
    field_classes as a list.
    """
    unknown = set(options) - _KNOWN_KEYS
    if unknown:
        raise ConfigError(
            f"unknown options {sorted(unknown)}; known: "
            f"{sorted(_KNOWN_KEYS)}")
    kwargs: dict = {}
    if "mode" in options:
        try:
            kwargs["mode"] = EncryptionMode(options["mode"])
        except ValueError:
            raise ConfigError(
                f"unknown mode {options['mode']!r}; choose from "
                f"{[m.value for m in EncryptionMode]}") from None
    for key in ("cipher", "partial_fraction", "field_fraction",
                "selection_seed", "compress", "optimize", "sign_data",
                "encrypt_data"):
        if key in options:
            kwargs[key] = options[key]
    if "field_classes" in options:
        kwargs["field_classes"] = tuple(options["field_classes"])
    if "epoch" in options:
        epoch = options["epoch"]
        if isinstance(epoch, str):
            # latin-1 mirrors config_to_dict's decoding: it maps each
            # code point 0x00-0xFF to the same byte, so arbitrary epoch
            # bytes survive a dict round-trip (UTF-8 would corrupt
            # bytes >= 0x80).
            try:
                epoch = epoch.encode("latin-1")
            except UnicodeEncodeError:
                raise ConfigError(
                    f"epoch {epoch!r} has characters above U+00FF; an "
                    "epoch is a byte string, so use code points "
                    "0x00-0xFF only") from None
        kwargs["epoch"] = epoch
    return EricConfig(**kwargs).validate()


def config_to_dict(config: EricConfig) -> dict:
    """JSON-friendly view of a configuration."""
    return {
        "mode": config.mode.value,
        "cipher": config.cipher,
        "partial_fraction": config.partial_fraction,
        "field_classes": list(config.field_classes),
        "field_fraction": config.field_fraction,
        "selection_seed": config.selection_seed,
        "compress": config.compress,
        "optimize": config.optimize,
        "epoch": config.epoch.decode("latin-1"),
        "sign_data": config.sign_data,
        "encrypt_data": config.encrypt_data,
    }


def describe(config: EricConfig) -> str:
    """Human-readable rendering (what the GUI would display)."""
    lines = [
        "ERIC encryption configuration",
        f"  mode:              {config.mode.value}",
        f"  cipher:            {config.cipher} "
        f"(available: {', '.join(registered_ciphers())})",
    ]
    if config.mode is EncryptionMode.PARTIAL:
        lines.append(f"  encrypted slots:   "
                     f"{config.partial_fraction:.0%} of instructions "
                     f"(seed {config.selection_seed:#x})")
    if config.mode is EncryptionMode.FIELD:
        lines.append(f"  encrypted fields:  {', '.join(config.field_classes)}"
                     f" on {config.field_fraction:.0%} of 32-bit "
                     "instructions")
        lines.append(f"  (selectable fields: {', '.join(FIELD_CLASSES)};"
                     " opcode always stays plaintext)")
    lines.append(f"  RVC compression:   {'on' if config.compress else 'off'}")
    lines.append(f"  optimizer:         "
                 f"{'on' if config.optimize else 'off'}")
    lines.append(f"  KMU epoch:         {config.epoch.decode('latin-1')}")
    return "\n".join(lines)
