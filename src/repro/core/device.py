"""A target device: physical PUF + HDE + Rocket-like SoC.

``Device.load_and_run`` is the whole hardware side of Fig. 3: the package
arrives, the HDE decrypts and validates it, and only then does the SoC
execute it.  ``Device.run_plain`` is the paper's baseline: the same SoC
running an unencrypted binary with no HDE in the path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.core.hde import HardwareDecryptionEngine, HdeReport
from repro.core.keys import puf_based_key
from repro.puf.arbiter import NOISE_SIGMA, PufArray
from repro.puf.environment import NOMINAL, Environment
from repro.puf.key_generator import MARGIN_SIGMAS, PufKeyGenerator
from repro.soc.cache import CacheConfig
from repro.soc.pipeline import DEFAULT_PIPELINE, PipelineModel
from repro.soc.soc import RocketLikeSoC, RunResult


@dataclass
class DeviceRunResult:
    """End-to-end outcome: decryption report + execution result."""

    run: RunResult
    hde: HdeReport

    @property
    def total_cycles(self) -> int:
        """HDE cycles + program cycles — the Fig. 7 numerator."""
        return self.hde.total_cycles + self.run.counters.cycles


class Device:
    """One physical device (Table I configuration by default)."""

    def __init__(self, device_seed: int, *,
                 puf_width: int = 32, puf_stages: int = 8,
                 key_bits: int = 32, votes: int = 11,
                 margin_sigmas: float = MARGIN_SIGMAS,
                 noise_sigma: float = NOISE_SIGMA,
                 epoch: bytes = b"epoch-0",
                 environment: Environment = NOMINAL,
                 memory_size: int = 1 << 20,
                 pipeline: PipelineModel = DEFAULT_PIPELINE,
                 icache: CacheConfig = CacheConfig(),
                 dcache: CacheConfig = CacheConfig(),
                 overlapped_hde: bool = False) -> None:
        self.device_seed = device_seed
        self.device_id = f"dev-{device_seed:016x}"
        self.epoch = epoch
        self.environment = environment
        self.puf_array = PufArray(width=puf_width, n_stages=puf_stages,
                                  device_seed=device_seed,
                                  noise_sigma=noise_sigma)
        self.pkg = PufKeyGenerator(self.puf_array, key_bits=key_bits,
                                   votes=votes,
                                   margin_sigmas=margin_sigmas)
        self.hde = HardwareDecryptionEngine(self.pkg, epoch=epoch,
                                            environment=environment,
                                            overlapped=overlapped_hde)
        self.soc = RocketLikeSoC(memory_size=memory_size, icache=icache,
                                 dcache=dcache, pipeline=pipeline)

    # -- provisioning -----------------------------------------------------

    def enrollment_key(self) -> bytes:
        """The PUF-based key exported at enrollment (step ① + handshake).

        Note what is *not* exported: the raw PUF key.  The vendor and the
        software source only ever see the conversion-function output, so
        the device can be re-keyed for other parties with a different
        epoch (paper §III.1 abstraction layer).
        """
        readout = self.pkg.generate(self.environment)
        return puf_based_key(readout.key, self.epoch)

    # -- execution ----------------------------------------------------------

    def load_and_run(self, package_bytes: bytes,
                     key_mask: bytes | None = None,
                     max_instructions: int = 20_000_000) -> DeviceRunResult:
        """Steps ⑤-⑥: decrypt, validate, execute.

        Raises :class:`repro.errors.ValidationError` (program never runs)
        if the package was not produced for this device or was modified.
        """
        program, report = self.hde.process(package_bytes,
                                           key_mask=key_mask)
        run = self.soc.run(program, max_instructions=max_instructions)
        return DeviceRunResult(run=run, hde=report)

    def run_plain(self, program: Program,
                  max_instructions: int = 20_000_000) -> RunResult:
        """Baseline: execute an unencrypted program, HDE bypassed."""
        return self.soc.run(program, max_instructions=max_instructions)
