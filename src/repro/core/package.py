"""The program-package wire format (what travels over the network).

Layout (little-endian)::

    magic        4s   b"ERIC"
    version      u16
    mode         u8     0=full 1=partial 2=field
    cipher_len   u8     followed by cipher name (utf-8)
    n_fields     u8     followed by field-class ids (u8 each)
    entry        u64
    text_base    u64
    data_base    u64
    text_len     u32
    data_len     u32
    slot_count   u32
    map          (slot_count+7)//8 bytes   1 bit per instruction slot
    enc_text     text_len bytes
    data         data_len bytes
    enc_signature 32 bytes

Size accounting matches the paper (§IV.A): full encryption adds only the
(fixed) signature — the all-ones map is implied and **not** serialized;
partial/field encryption pays one map bit per instruction — which is
1 bit per 16 bits of text when RVC is in play.  The small fixed header
exists in any realistic container format and is the same for all modes.

Integrity note: the package itself is *not* MACed — that is the point of
the design.  Any corruption either breaks parsing (structural bounds) or
garbles decryption, and the decrypted-signature comparison in the
Validation Unit fails closed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.config import EncryptionMode
from repro.core.encryptor import EncryptionMap
from repro.errors import PackageFormatError
from repro.isa.fields import FIELD_CLASSES

MAGIC = b"ERIC"
VERSION = 1
SIGNATURE_BYTES = 32

_MODE_IDS = {EncryptionMode.FULL: 0, EncryptionMode.PARTIAL: 1,
             EncryptionMode.FIELD: 2}
_MODE_FROM_ID = {v: k for k, v in _MODE_IDS.items()}

_FIXED = struct.Struct("<4sHBBB")
_GEOMETRY = struct.Struct("<QQQIII")

_FLAG_DATA_SIGNED = 0x01
_FLAG_DATA_ENCRYPTED = 0x02


@dataclass(frozen=True)
class ProgramPackage:
    """Parsed package (the HDE's input)."""

    mode: EncryptionMode
    cipher: str
    field_classes: tuple[str, ...]
    entry: int
    text_base: int
    data_base: int
    enc_text: bytes
    data: bytes
    enc_map: EncryptionMap
    enc_signature: bytes
    data_signed: bool = False
    data_encrypted: bool = False

    def serialize(self) -> bytes:
        cipher_bytes = self.cipher.encode("utf-8")
        if len(cipher_bytes) > 255:
            raise PackageFormatError("cipher name too long")
        flags = (_FLAG_DATA_SIGNED if self.data_signed else 0) \
            | (_FLAG_DATA_ENCRYPTED if self.data_encrypted else 0)
        parts = [
            _FIXED.pack(MAGIC, VERSION, _MODE_IDS[self.mode], flags,
                        len(cipher_bytes)),
            cipher_bytes,
            bytes([len(self.field_classes)]),
            bytes(FIELD_CLASSES.index(c) for c in self.field_classes),
            _GEOMETRY.pack(self.entry, self.text_base, self.data_base,
                           len(self.enc_text), len(self.data),
                           self.enc_map.count),
            b"" if self.mode is EncryptionMode.FULL else self.enc_map.bits,
            self.enc_text,
            self.data,
            self.enc_signature,
        ]
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "ProgramPackage":
        cursor = 0

        def take(n: int, what: str) -> bytes:
            nonlocal cursor
            if cursor + n > len(blob):
                raise PackageFormatError(f"package truncated in {what}")
            piece = blob[cursor:cursor + n]
            cursor += n
            return piece

        magic, version, mode_id, flags, cipher_len = _FIXED.unpack(
            take(_FIXED.size, "fixed header"))
        if magic != MAGIC:
            raise PackageFormatError(f"bad package magic {magic!r}")
        if version != VERSION:
            raise PackageFormatError(f"unsupported package version "
                                     f"{version}")
        if mode_id not in _MODE_FROM_ID:
            raise PackageFormatError(f"unknown mode id {mode_id}")
        cipher = take(cipher_len, "cipher name").decode("utf-8")
        n_fields = take(1, "field count")[0]
        field_ids = take(n_fields, "field classes")
        try:
            field_classes = tuple(FIELD_CLASSES[i] for i in field_ids)
        except IndexError:
            raise PackageFormatError("unknown field-class id") from None
        entry, text_base, data_base, text_len, data_len, slot_count = \
            _GEOMETRY.unpack(take(_GEOMETRY.size, "geometry"))
        mode = _MODE_FROM_ID[mode_id]
        if mode is EncryptionMode.FULL:
            # all-ones map is implied; not carried on the wire (§IV.A)
            enc_map = EncryptionMap.full(slot_count)
        else:
            map_len = (slot_count + 7) // 8
            enc_map = EncryptionMap(take(map_len, "encryption map"),
                                    slot_count)
        enc_text = take(text_len, "text")
        data = take(data_len, "data")
        enc_signature = take(SIGNATURE_BYTES, "signature")
        if cursor != len(blob):
            raise PackageFormatError(
                f"{len(blob) - cursor} trailing bytes after package")
        return cls(mode=mode, cipher=cipher,
                   field_classes=field_classes, entry=entry,
                   text_base=text_base, data_base=data_base,
                   enc_text=enc_text, data=data, enc_map=enc_map,
                   enc_signature=enc_signature,
                   data_signed=bool(flags & _FLAG_DATA_SIGNED),
                   data_encrypted=bool(flags & _FLAG_DATA_ENCRYPTED))

    @property
    def size(self) -> int:
        return len(self.serialize())
