"""The ERIC compiler: compile, sign, encrypt, package — with timings.

This wraps the MiniC driver (the "baseline compiler" of Fig. 6) and adds
the paper's step ③: signature generation, encryption under the target's
PUF-based key, and packaging.  ``compile_and_package`` measures each
stage's wall time so the Fig. 6 bench can report

    (ERIC compile time) / (baseline compile time)

exactly as the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.asm.program import Program
from repro.cc.driver import CompileResult, compile_source
from repro.core.config import EricConfig
from repro.core.encryptor import EncryptedProgram, encrypt_program
from repro.core.keys import KeyManagementUnit
from repro.core.package import ProgramPackage
from repro.core.signature import compute_signature
from repro.errors import ConfigError


@dataclass
class PackagingTimings:
    """Wall-clock seconds per stage (Fig. 6's raw material)."""

    compile_s: float = 0.0
    signature_s: float = 0.0
    encryption_s: float = 0.0
    packaging_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (self.compile_s + self.signature_s + self.encryption_s
                + self.packaging_s)

    @property
    def eric_overhead_s(self) -> float:
        """Time added on top of the plain compile."""
        return self.signature_s + self.encryption_s + self.packaging_s


@dataclass
class EricCompileResult:
    """Everything the software source produces for one program."""

    package_bytes: bytes
    package: ProgramPackage
    program: Program
    encrypted: EncryptedProgram
    timings: PackagingTimings
    config: EricConfig
    plain_size: int = 0

    @property
    def package_size(self) -> int:
        return len(self.package_bytes)

    @property
    def size_increase_fraction(self) -> float:
        """Fig. 5: (package - plain) / plain."""
        if self.plain_size == 0:
            return 0.0
        return (self.package_size - self.plain_size) / self.plain_size


class EricCompiler:
    """Software-source side of ERIC (Fig. 4 left half)."""

    def __init__(self, config: EricConfig | None = None) -> None:
        self.config = (config or EricConfig()).validate()

    def compile_baseline(self, source: str, name: str = "program",
                         ) -> tuple[CompileResult, float]:
        """Plain compile (no ERIC); returns the result and wall seconds."""
        start = time.perf_counter()
        result = compile_source(source, name=name,
                                optimize=self.config.optimize,
                                compress=self.config.compress)
        return result, time.perf_counter() - start

    def package_program(self, program: Program, target_key: bytes,
                        timings: PackagingTimings | None = None,
                        ) -> EricCompileResult:
        """Steps ③-④ for an already-compiled program."""
        if len(target_key) != 32:
            raise ConfigError(
                "target_key must be the device's 32-byte PUF-based key")
        timings = timings or PackagingTimings()
        config = self.config

        start = time.perf_counter()
        signature = compute_signature(program,
                                      include_data=config.sign_data)
        timings.signature_s = time.perf_counter() - start

        start = time.perf_counter()
        kmu = KeyManagementUnit(target_key)
        text_cipher = kmu.text_cipher(config.cipher)
        signature_cipher = kmu.signature_cipher(config.cipher)
        encrypted = encrypt_program(program, config, text_cipher,
                                    signature_cipher, signature)
        data_payload = program.data
        if config.encrypt_data and program.data:
            data_payload = kmu.data_cipher(config.cipher).transform(
                program.data, 0)
        timings.encryption_s = time.perf_counter() - start

        start = time.perf_counter()
        package = ProgramPackage(
            mode=config.mode, cipher=config.cipher,
            field_classes=(config.field_classes
                           if config.mode.value == "field" else ()),
            entry=program.entry, text_base=program.text_base,
            data_base=program.data_base, enc_text=encrypted.ciphertext,
            data=data_payload, enc_map=encrypted.enc_map,
            enc_signature=encrypted.enc_signature,
            data_signed=config.sign_data,
            data_encrypted=config.encrypt_data,
        )
        package_bytes = package.serialize()
        timings.packaging_s = time.perf_counter() - start

        return EricCompileResult(
            package_bytes=package_bytes, package=package, program=program,
            encrypted=encrypted, timings=timings, config=config,
            plain_size=len(program.serialize_plain()),
        )

    def compile_and_package(self, source: str, target_key: bytes,
                            name: str = "program") -> EricCompileResult:
        """The full software-source flow: steps ②-④ of Fig. 3."""
        compile_result, compile_s = self.compile_baseline(source, name)
        timings = PackagingTimings(compile_s=compile_s)
        return self.package_program(compile_result.program, target_key,
                                    timings)
