"""The ERIC compiler: compile, sign, encrypt, package — with timings.

This wraps the MiniC driver (the "baseline compiler" of Fig. 6) and adds
the paper's step ③: signature generation, encryption under the target's
PUF-based key, and packaging.  ``compile_and_package`` measures each
stage's wall time so the Fig. 6 bench can report

    (ERIC compile time) / (baseline compile time)

exactly as the paper does.

The flow is split along the device boundary: :meth:`EricCompiler.prepare`
produces a :class:`CompiledArtifact` — everything that does *not* depend
on the target device (program image, signature, encryption map) — and
:meth:`EricCompiler.package_artifact` binds one artifact to one device
key.  Fleet deployment (``repro.service``) caches artifacts so a
thousand-device rollout pays for compilation and signing exactly once.

A :class:`~repro.policy.ProtectionPolicy` slots into the same pipeline:
its obfuscate rules rewrite the generated assembly (opaque-predicate
insertion) before signing, and its encrypt rules replace the
config-driven encryption map with a per-region one — both inside
``prepare()``, so every downstream consumer (fleet cache, farm,
figures) inherits policy support unchanged.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro.asm.program import Program
from repro.cc.driver import CompileResult, compile_source
from repro.core.config import EricConfig
from repro.core.encryptor import (EncryptedProgram, EncryptionMap,
                                  build_map, encrypt_program)
from repro.core.keys import KeyManagementUnit
from repro.core.package import ProgramPackage
from repro.core.signature import compute_signature
from repro.errors import ConfigError


@dataclass
class PackagingTimings:
    """Wall-clock seconds per stage (Fig. 6's raw material)."""

    compile_s: float = 0.0
    signature_s: float = 0.0
    encryption_s: float = 0.0
    packaging_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (self.compile_s + self.signature_s + self.encryption_s
                + self.packaging_s)

    @property
    def eric_overhead_s(self) -> float:
        """Time added on top of the plain compile."""
        return self.signature_s + self.encryption_s + self.packaging_s


@dataclass
class EricCompileResult:
    """Everything the software source produces for one program."""

    package_bytes: bytes
    package: ProgramPackage
    program: Program
    encrypted: EncryptedProgram
    timings: PackagingTimings
    config: EricConfig
    plain_size: int = 0

    @property
    def package_size(self) -> int:
        return len(self.package_bytes)

    @property
    def size_increase_fraction(self) -> float:
        """Fig. 5: (package - plain) / plain."""
        if self.plain_size == 0:
            return 0.0
        return (self.package_size - self.plain_size) / self.plain_size


@dataclass(frozen=True)
class CompiledArtifact:
    """The device-independent half of the software-source flow.

    Compilation, signature generation and encryption-map selection depend
    only on ``(source, config)`` — never on the target device — so one
    artifact can be bound to any number of device keys with
    :meth:`EricCompiler.package_artifact`.  This is what the fleet
    artifact cache stores.
    """

    program: Program
    signature: bytes
    enc_map: EncryptionMap
    config: EricConfig
    name: str
    plain_size: int
    source_digest: str
    compile_s: float = 0.0
    signature_s: float = 0.0
    #: encryption-map slot selection; reported under encryption_s (where
    #: this work was always billed) so Fig. 6's signature-only adjustment
    #: keeps subtracting pure hash time
    selection_s: float = 0.0


def source_digest(source: str) -> str:
    """Canonical cache identity of a source text (SHA-256 hex)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class EricCompiler:
    """Software-source side of ERIC (Fig. 4 left half).

    ``policy`` layers declarative per-region protection on top of the
    base ``config``: the effective configuration (mode/cipher/flag
    overrides) is computed once here, obfuscation runs in
    :meth:`prepare`, and the encryption map in :meth:`prepare_program`
    honors the policy's region rules.
    """

    def __init__(self, config: EricConfig | None = None,
                 policy=None) -> None:
        base = (config or EricConfig()).validate()
        self.policy = policy.validate() if policy is not None else None
        self.config = (self.policy.effective_config(base)
                       if self.policy is not None else base)

    def compile_baseline(self, source: str, name: str = "program",
                         ) -> tuple[CompileResult, float]:
        """Plain compile (no ERIC); returns the result and wall seconds."""
        start = time.perf_counter()
        result = compile_source(source, name=name,
                                optimize=self.config.optimize,
                                compress=self.config.compress)
        return result, time.perf_counter() - start

    def prepare(self, source: str, name: str = "program",
                ) -> CompiledArtifact:
        """Steps ②-③ up to the device boundary: compile, sign, select.

        Everything here is a pure function of ``(source, config,
        policy)``; the result can be cached and re-bound to any device
        key.  A policy's obfuscate rules are applied here: the
        generated assembly is rewritten (opaque-predicate insertion)
        and re-assembled — label-based text, so every branch and
        address constant re-resolves around the inserted code — before
        signing sees the program.  The rewrite time is billed to
        ``compile_s``: it is compilation work the protected flow pays
        and the baseline does not.
        """
        compile_result, compile_s = self.compile_baseline(source, name)
        program = compile_result.program
        if self.policy is not None and self.policy.obfuscate:
            from repro.asm.assembler import assemble
            from repro.policy.opaque import insert_opaque_predicates

            start = time.perf_counter()
            rewritten = insert_opaque_predicates(compile_result.asm_text,
                                                 self.policy)
            program = assemble(rewritten.asm_text, name=name,
                               compress=self.config.compress)
            compile_s += time.perf_counter() - start
        return self.prepare_program(program, name=name,
                                    compile_s=compile_s,
                                    digest=source_digest(source))

    def prepare_program(self, program: Program, name: str = "program",
                        compile_s: float = 0.0, digest: str = "",
                        ) -> CompiledArtifact:
        """Build the device-independent artifact for a compiled program."""
        config = self.config
        start = time.perf_counter()
        signature = compute_signature(program,
                                      include_data=config.sign_data)
        signature_s = time.perf_counter() - start
        start = time.perf_counter()
        if self.policy is not None and self.policy.encrypt:
            from repro.policy.policy import build_policy_map
            enc_map = build_policy_map(program, self.policy, config)
        else:
            enc_map = build_map(program, config)
        selection_s = time.perf_counter() - start
        return CompiledArtifact(
            program=program, signature=signature, enc_map=enc_map,
            config=config, name=name,
            plain_size=len(program.serialize_plain()),
            source_digest=digest, compile_s=compile_s,
            signature_s=signature_s, selection_s=selection_s,
        )

    def package_artifact(self, artifact: CompiledArtifact,
                         target_key: bytes) -> EricCompileResult:
        """Step ④ for one device: encrypt + package under its key.

        This is the only per-device work in the whole software-source
        flow; a fleet deployment calls it once per device while paying
        :meth:`prepare` exactly once.
        """
        if len(target_key) != 32:
            raise ConfigError(
                "target_key must be the device's 32-byte PUF-based key")
        config = artifact.config
        program = artifact.program
        timings = PackagingTimings(compile_s=artifact.compile_s,
                                   signature_s=artifact.signature_s)

        start = time.perf_counter()
        kmu = KeyManagementUnit(target_key)
        text_cipher = kmu.text_cipher(config.cipher)
        signature_cipher = kmu.signature_cipher(config.cipher)
        encrypted = encrypt_program(program, config, text_cipher,
                                    signature_cipher, artifact.signature,
                                    enc_map=artifact.enc_map)
        data_payload = program.data
        if config.encrypt_data and program.data:
            data_payload = kmu.data_cipher(config.cipher).transform(
                program.data, 0)
        timings.encryption_s = (artifact.selection_s
                                + time.perf_counter() - start)

        start = time.perf_counter()
        package = ProgramPackage(
            mode=config.mode, cipher=config.cipher,
            field_classes=(config.field_classes
                           if config.mode.value == "field" else ()),
            entry=program.entry, text_base=program.text_base,
            data_base=program.data_base, enc_text=encrypted.ciphertext,
            data=data_payload, enc_map=encrypted.enc_map,
            enc_signature=encrypted.enc_signature,
            data_signed=config.sign_data,
            data_encrypted=config.encrypt_data,
        )
        package_bytes = package.serialize()
        timings.packaging_s = time.perf_counter() - start

        return EricCompileResult(
            package_bytes=package_bytes, package=package, program=program,
            encrypted=encrypted, timings=timings, config=config,
            plain_size=artifact.plain_size,
        )

    def package_program(self, program: Program, target_key: bytes,
                        timings: PackagingTimings | None = None,
                        ) -> EricCompileResult:
        """Steps ③-④ for an already-compiled program.

        A caller-supplied ``timings`` is populated in place (and becomes
        the result's ``timings``), preserving the pre-split contract.
        """
        compile_s = timings.compile_s if timings else 0.0
        artifact = self.prepare_program(program, compile_s=compile_s)
        result = self.package_artifact(artifact, target_key)
        if timings is not None:
            timings.signature_s = result.timings.signature_s
            timings.encryption_s = result.timings.encryption_s
            timings.packaging_s = result.timings.packaging_s
            result.timings = timings
        return result

    def compile_and_package(self, source: str, target_key: bytes,
                            name: str = "program") -> EricCompileResult:
        """The full software-source flow: steps ②-④ of Fig. 3."""
        artifact = self.prepare(source, name)
        return self.package_artifact(artifact, target_key)
