"""Compiler-side Encryption Unit: full / partial / field encryption.

Granularity is the *instruction slot* (paper §III.1): the encryption map
carries one bit per instruction, and the keystream is addressed by the
slot's byte offset inside the text section, so the HDE can decrypt any
subset of slots with the same key material.

FIELD mode encrypts only selected bit-fields of 32-bit instructions
(e.g. the "pointer values of the instructions that make memory
accesses"); opcode and funct bits stay plaintext so the HDE can recompute
the masks — and so the binary does not obviously look encrypted.
Compressed (16-bit) slots are not field-encrypted: their map bit stays 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import InstructionSlot, Program
from repro.core.config import EncryptionMode, EricConfig
from repro.crypto.prng import Xoshiro256StarStar
from repro.crypto.xor_cipher import Cipher
from repro.errors import ConfigError, PackageFormatError


@dataclass(frozen=True)
class EncryptionMap:
    """One bit per instruction slot: is the slot encrypted?"""

    bits: bytes
    count: int

    def __post_init__(self) -> None:
        if len(self.bits) != (self.count + 7) // 8:
            raise PackageFormatError(
                f"map of {self.count} slots needs "
                f"{(self.count + 7) // 8} bytes, got {len(self.bits)}")

    def __getitem__(self, index: int) -> bool:
        if not 0 <= index < self.count:
            raise IndexError(index)
        return bool(self.bits[index // 8] & (1 << (index % 8)))

    def __len__(self) -> int:
        return self.count

    @property
    def encrypted_count(self) -> int:
        return sum(1 for i in range(self.count) if self[i])

    @classmethod
    def full(cls, count: int) -> "EncryptionMap":
        bits = bytearray((count + 7) // 8)
        for i in range(count):
            bits[i // 8] |= 1 << (i % 8)
        return cls(bytes(bits), count)

    @classmethod
    def from_indices(cls, count: int, indices) -> "EncryptionMap":
        bits = bytearray((count + 7) // 8)
        for i in indices:
            if not 0 <= i < count:
                raise ConfigError(f"slot index {i} out of range")
            bits[i // 8] |= 1 << (i % 8)
        return cls(bytes(bits), count)


def select_partial_slots(slot_count: int, fraction: float,
                         seed: int) -> list[int]:
    """Random slot selection for PARTIAL mode (paper: "the instructions
    randomly determined are selected for encryption")."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError("fraction must be in [0, 1]")
    chosen = round(slot_count * fraction)
    if chosen == 0:
        return []
    return Xoshiro256StarStar(seed).sample_indices(slot_count, chosen)


def select_field_slots(layout: tuple[InstructionSlot, ...], fraction: float,
                       seed: int) -> list[int]:
    """FIELD-mode selection: only 32-bit slots are eligible."""
    eligible = [i for i, slot in enumerate(layout) if slot.size == 4]
    chosen = round(len(eligible) * fraction)
    if chosen == 0:
        return []
    picks = Xoshiro256StarStar(seed).sample_indices(len(eligible), chosen)
    return [eligible[i] for i in picks]


def build_map(program: Program, config: EricConfig) -> EncryptionMap:
    """The encryption map a configuration implies for a program."""
    count = program.instruction_count
    if config.mode is EncryptionMode.FULL:
        return EncryptionMap.full(count)
    if config.mode is EncryptionMode.PARTIAL:
        indices = select_partial_slots(count, config.partial_fraction,
                                       config.selection_seed)
        return EncryptionMap.from_indices(count, indices)
    indices = select_field_slots(program.layout, config.field_fraction,
                                 config.selection_seed)
    return EncryptionMap.from_indices(count, indices)


def encrypt_text(text: bytes, layout: tuple[InstructionSlot, ...],
                 enc_map: EncryptionMap, cipher: Cipher,
                 mode: EncryptionMode = EncryptionMode.FULL,
                 field_classes: tuple[str, ...] = ()) -> bytes:
    """Encrypt the flagged slots of a text section.

    For FULL/PARTIAL the whole slot is XORed with keystream at its byte
    offset.  For FIELD only the class mask bits of the (32-bit) slot are
    XORed — the mask is recomputed by the HDE from the plaintext
    opcode/funct bits, see :func:`repro.isa.fields.encryptable_mask`.
    """
    if len(enc_map) != len(layout):
        raise PackageFormatError("encryption map does not match layout")
    out = bytearray(text)
    if mode is EncryptionMode.FIELD:
        from repro.isa.fields import encryptable_mask
        for index, slot in enumerate(layout):
            if not enc_map[index]:
                continue
            start, size = slot.offset, slot.size
            if size != 4:
                raise PackageFormatError(
                    "FIELD mode selected a compressed slot")
            word = int.from_bytes(out[start:start + 4], "little")
            mask = encryptable_mask(word, field_classes)
            stream = int.from_bytes(cipher.keystream(start, 4), "little")
            word ^= stream & mask
            out[start:start + 4] = word.to_bytes(4, "little")
        return bytes(out)

    # FULL/PARTIAL: merge consecutive flagged slots into spans and
    # transform each span in one call (keystream is offset-addressed, so
    # a span transform is bit-identical to per-slot transforms — this is
    # the software analogue of the HDE's streaming 64-bit XOR lane).
    for start, end in _flagged_spans(layout, enc_map):
        out[start:end] = cipher.transform(bytes(out[start:end]), start)
    return bytes(out)


def _flagged_spans(layout: tuple[InstructionSlot, ...],
                   enc_map: EncryptionMap):
    """Yield (start, end) byte ranges of maximal runs of flagged slots."""
    span_start = None
    span_end = 0
    for index, slot in enumerate(layout):
        if enc_map[index]:
            if span_start is None:
                span_start = slot.offset
            span_end = slot.offset + slot.size
        elif span_start is not None:
            yield span_start, span_end
            span_start = None
    if span_start is not None:
        yield span_start, span_end


@dataclass
class EncryptedProgram:
    """Output of the Encryption Unit, ready for packaging."""

    ciphertext: bytes
    enc_map: EncryptionMap
    enc_signature: bytes
    program: Program
    config: EricConfig


def encrypt_program(program: Program, config: EricConfig,
                    text_cipher: Cipher, signature_cipher: Cipher,
                    signature: bytes,
                    enc_map: EncryptionMap | None = None) -> EncryptedProgram:
    """Full Encryption Unit flow: map -> encrypt text -> wrap signature.

    ``enc_map`` lets a caller reuse a precomputed map: slot selection is
    device-independent, so a fleet deployment builds it once and encrypts
    under many keys without re-running the selection PRNG.
    """
    config.validate()
    if enc_map is None:
        enc_map = build_map(program, config)
    ciphertext = encrypt_text(program.text, program.layout, enc_map,
                              text_cipher, config.mode,
                              config.field_classes)
    enc_signature = signature_cipher.transform(signature, 0)
    return EncryptedProgram(ciphertext=ciphertext, enc_map=enc_map,
                            enc_signature=enc_signature, program=program,
                            config=config)
