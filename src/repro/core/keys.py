"""Key Management Unit — both sides of the paper's key abstraction.

The raw PUF key never leaves the device (and is never handed to the
software developer).  The KMU's *conversion function* turns it into a
PUF-based key bound to an epoch/context; everything else (text-encryption
key, signature-wrap key) derives from the PUF-based key with purpose
labels:

    PUF key --(conversion: SHA-256, epoch)--> PUF-based key
    PUF-based key --(KDF "text-encryption")--> cipher key
    PUF-based key --(KDF "signature-wrap")--> signature cipher key

Re-keying a device = changing the epoch (no hardware change).  Fleet
deployment (one compile, many devices, §III.1) uses XOR helper data:
``mask_i = pbk_i XOR group_key`` is public, and each device recovers
``group_key = pbk_i XOR mask_i`` inside its KMU.
"""

from __future__ import annotations

from repro.crypto.kdf import derive_key
from repro.crypto.sha256 import ROUNDS_PER_BLOCK, sha256
from repro.crypto.xor_cipher import Cipher, make_cipher
from repro.errors import ConfigError

_CONVERSION_TAG = b"ERIC-PBK-v1"

#: Cycle cost the HDE charges for one on-device KMU key setup: the
#: conversion hash plus two KDF invocations on a serialized SHA core
#: (each HMAC = 2 hashes = ~4 compression blocks).
KMU_SETUP_BLOCKS = 10
KMU_SETUP_CYCLES = KMU_SETUP_BLOCKS * ROUNDS_PER_BLOCK


def puf_based_key(puf_key: bytes, epoch: bytes = b"epoch-0") -> bytes:
    """The KMU conversion function: PUF key -> 32-byte PUF-based key."""
    if not puf_key:
        raise ConfigError("puf_key must be non-empty")
    if not epoch:
        raise ConfigError("epoch must be non-empty")
    return sha256(_CONVERSION_TAG + len(epoch).to_bytes(2, "little")
                  + epoch + puf_key)


class KeyManagementUnit:
    """Per-purpose key derivation above a PUF-based key.

    The same class serves the software source (which received the
    PUF-based key through the vendor handshake) and the hardware (which
    regenerates it from the physical PUF) — that symmetry *is* the
    paper's abstraction layer.
    """

    def __init__(self, pbk: bytes) -> None:
        if len(pbk) != 32:
            raise ConfigError("PUF-based key must be 32 bytes")
        self._pbk = bytes(pbk)

    def encryption_key(self) -> bytes:
        return derive_key(self._pbk, "text-encryption")

    def signature_key(self) -> bytes:
        return derive_key(self._pbk, "signature-wrap")

    def data_key(self) -> bytes:
        return derive_key(self._pbk, "data-encryption")

    def text_cipher(self, cipher_name: str) -> Cipher:
        return make_cipher(cipher_name, self.encryption_key())

    def signature_cipher(self, cipher_name: str) -> Cipher:
        return make_cipher(cipher_name, self.signature_key())

    def data_cipher(self, cipher_name: str) -> Cipher:
        return make_cipher(cipher_name, self.data_key())

    def fingerprint(self) -> str:
        """Non-secret identifier for logs/registry display."""
        return sha256(b"ERIC-FP" + self._pbk)[:8].hex()


# --- fleet helper data -------------------------------------------------------


def group_mask(device_pbk: bytes, group_key: bytes) -> bytes:
    """Helper data binding a device to a group key (public value)."""
    if len(device_pbk) != len(group_key):
        raise ConfigError("device key and group key sizes differ")
    return bytes(a ^ b for a, b in zip(device_pbk, group_key))


def recover_group_key(device_pbk: bytes, mask: bytes) -> bytes:
    """Device-side recovery of the group key from helper data."""
    if len(device_pbk) != len(mask):
        raise ConfigError("device key and mask sizes differ")
    return bytes(a ^ b for a, b in zip(device_pbk, mask))
