"""Enrollment and handshake: how the software source learns device keys.

The paper assumes "the handshake is already done for the hardware
targeted by the software source, and PUF-based keys ... are assumed to be
known to the software source" (§III.1).  This module is that assumed
infrastructure, made concrete:

* at manufacturing/enrollment time the vendor reads each device's
  PUF-based key (never the raw PUF key) into a registry;
* a software source queries the registry by device id;
* *device groups* let one compile target many devices: the registry
  issues a fresh group key and per-device XOR helper data
  (``mask_i = pbk_i ^ group_key``); each device recovers the group key
  inside its KMU.  This reproduces the paper's claim that mapping
  multiple devices to one key means "programs can be created to run on
  multiple hardware ... with a single compile step".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.device import Device
from repro.core.keys import group_mask
from repro.crypto import rsa
from repro.crypto.kdf import derive_key
from repro.errors import ProvisioningError


@dataclass(frozen=True)
class GroupProvision:
    """A provisioned device group."""

    group_id: str
    group_key: bytes
    #: device id -> helper data handed to that device
    masks: dict[str, bytes] = field(default_factory=dict)


class DeviceRegistry:
    """The vendor's enrollment database."""

    def __init__(self, vendor_secret: bytes = b"vendor-secret") -> None:
        self._keys: dict[str, bytes] = {}
        self._vendor_secret = vendor_secret
        self._group_counter = 0
        self._lock = threading.Lock()

    def enroll(self, device: Device) -> str:
        """Record a device's PUF-based key; returns its id."""
        with self._lock:
            if device.device_id in self._keys:
                raise ProvisioningError(
                    f"device {device.device_id} already enrolled")
            self._keys[device.device_id] = device.enrollment_key()
        return device.device_id

    def ensure_enrolled(self, device: Device) -> bytes:
        """Step ① + handshake in one idempotent call.

        Enrolls the device if the registry has never seen it, then
        returns its PUF-based key — what every deployment entry point
        (library, session, CLI) uses so they all exercise the same
        enrollment path.  Safe to call concurrently from fleet workers.
        """
        with self._lock:
            if device.device_id not in self._keys:
                self._keys[device.device_id] = device.enrollment_key()
            return self._keys[device.device_id]

    def handshake(self, device_id: str) -> bytes:
        """What a software source receives for a target device."""
        try:
            return self._keys[device_id]
        except KeyError:
            raise ProvisioningError(
                f"unknown device {device_id!r}: not enrolled") from None

    def handshake_wrapped(self, device_id: str,
                          requester_public: rsa.RsaPublicKey) -> bytes:
        """RSA-wrapped handshake (the paper's §VI future work).

        Instead of assuming a secure channel to the software source, the
        registry returns the device's PUF-based key encrypted under the
        requester's RSA public key; only the holder of the matching
        private key can unwrap it (see :mod:`repro.crypto.rsa`).
        """
        pbk = self.handshake(device_id)
        return rsa.encrypt(requester_public, pbk,
                           entropy=device_id.encode())

    @property
    def enrolled(self) -> tuple[str, ...]:
        return tuple(sorted(self._keys))

    def provision_group(self, device_ids: list[str]) -> GroupProvision:
        """Issue a group key + per-device helper data (fleet compile)."""
        if not device_ids:
            raise ProvisioningError("a group needs at least one device")
        missing = [d for d in device_ids if d not in self._keys]
        if missing:
            raise ProvisioningError(f"devices not enrolled: {missing}")
        self._group_counter += 1
        group_id = f"group-{self._group_counter}"
        group_key = derive_key(self._vendor_secret, "group-key",
                               context=group_id.encode())
        masks = {
            device_id: group_mask(self._keys[device_id], group_key)
            for device_id in device_ids
        }
        return GroupProvision(group_id=group_id, group_key=group_key,
                              masks=masks)
