"""Encryption configuration — the decision surface of ERIC's interface.

The paper's GUI lets the programmer choose (§III.1, step ②): the target
ISA flavour, the encryption function, full/partial/field encryption, and
the target hardware's key.  :class:`EricConfig` is that choice set as a
validated value object.

``TABLE_I_ENVIRONMENT`` mirrors the paper's test-environment table so the
Table I bench can print paper-vs-reproduction configuration rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.crypto.xor_cipher import registered_ciphers
from repro.errors import ConfigError
from repro.isa.fields import FIELD_CLASSES


class EncryptionMode(Enum):
    """The paper's three encryption methods (§III.1)."""

    FULL = "full"
    PARTIAL = "partial"
    FIELD = "field"


@dataclass(frozen=True)
class EricConfig:
    """Packaging configuration handed to :class:`EricCompiler`.

    Attributes:
        mode: full program, random subset of instructions, or selected
            bit-fields within instructions.
        cipher: registered cipher name ("xor-repeating" is the paper's).
        partial_fraction: fraction of instruction slots encrypted in
            PARTIAL mode.
        field_classes: which instruction fields FIELD mode hides
            (opcode/funct are never encrypted so the HDE can recompute
            the masks).
        field_fraction: fraction of eligible (32-bit) slots FIELD mode
            touches.
        selection_seed: PRNG seed for the random slot selection.
        compress: compile with RVC compression (RV64GC vs RV64G).
        optimize: run the MiniC optimizer.
        epoch: KMU conversion-function context; re-keying a device is
            changing this string (§III.2 Key Management Unit).
        sign_data: extension — also cover the data section with the
            signature.  The paper hashes "the instructions" only, so the
            faithful default is False.
        encrypt_data: extension — encrypt the data section too (under a
            separately derived key).  The paper's encryption is
            instruction-oriented, so the faithful default is False; turn
            this on when string constants/tables are themselves secret.
    """

    mode: EncryptionMode = EncryptionMode.FULL
    cipher: str = "xor-repeating"
    partial_fraction: float = 0.5
    field_classes: tuple[str, ...] = ("imm", "rs1", "rs2", "rd")
    field_fraction: float = 1.0
    selection_seed: int = 0xE51C
    compress: bool = False
    optimize: bool = True
    epoch: bytes = b"epoch-0"
    sign_data: bool = False
    encrypt_data: bool = False

    def validate(self) -> "EricConfig":
        if self.cipher not in registered_ciphers():
            raise ConfigError(
                f"unknown cipher {self.cipher!r}; "
                f"registered: {registered_ciphers()}")
        if not 0.0 <= self.partial_fraction <= 1.0:
            raise ConfigError("partial_fraction must be in [0, 1]")
        if not 0.0 <= self.field_fraction <= 1.0:
            raise ConfigError("field_fraction must be in [0, 1]")
        if not self.field_classes and self.mode is EncryptionMode.FIELD:
            raise ConfigError("FIELD mode needs at least one field class")
        for cls in self.field_classes:
            if cls not in FIELD_CLASSES:
                raise ConfigError(f"unknown field class {cls!r}")
        if "opcode" in self.field_classes:
            raise ConfigError(
                "opcode bits cannot be encrypted: the HDE derives field "
                "masks from them (and plaintext opcodes hide that the "
                "program is encrypted at all, §III.1)")
        if not self.epoch:
            raise ConfigError("epoch must be non-empty")
        return self


#: Paper Table I, for the configuration bench.
TABLE_I_ENVIRONMENT: dict[str, tuple[str, str]] = {
    # parameter: (paper value, reproduction value)
    "FPGA": ("Xilinx Zedboard", "simulated (structural area model)"),
    "PUF Type": ("Arbiter PUF", "Arbiter PUF (additive delay model)"),
    "PUF Parameters": ("32x 8-bit challenge 1-bit response",
                       "32x 8-bit challenge 1-bit response"),
    "Signature Function": ("SHA-256", "SHA-256 (from scratch)"),
    "Encryption Function": ("XOR Cipher", "XOR Cipher (repeating key)"),
    "SoC": ("Rocket Chip (In-Order 6-stage)",
            "Rocket-like in-order timing model"),
    "Test Frequency": ("25 MHz", "25 MHz (cycle model)"),
    "Target ISA": ("RV64GC", "RV64IM + RVC subset"),
    "L1 Data Cache": ("16KiB, 4-way, Set-associative",
                      "16KiB, 4-way, Set-associative"),
    "L1 Instruction Cache": ("16KiB, 4-way, Set-associative",
                             "16KiB, 4-way, Set-associative"),
    "Register File": ("31 Entries, 64-bit", "31 Entries, 64-bit"),
}
