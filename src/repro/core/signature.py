"""Signature Generator — SHA-256 over the plaintext program (§III.1).

The paper computes the signature "by running a cryptographic hash
function **on the instructions** before the program is encrypted", so the
default signature covers the text section plus the load metadata (entry,
section bases, lengths) — tampering with the code or redirecting the
entry point is detected by the Validation Unit.  Covering the data
section as well is an extension this reproduction offers via
``include_data=True`` (and ``EricConfig.sign_data``); the flag travels in
the package header so the HDE recomputes the same digest.

The signature is computed *before* encryption and travels with the
package in encrypted form, "making the signature useless for those who
cannot decrypt the program".
"""

from __future__ import annotations

import struct

from repro.asm.program import Program
from repro.crypto.sha256 import ROUNDS_PER_BLOCK, SHA256

SIGNATURE_BYTES = 32


def _metadata(program: Program) -> bytes:
    return struct.pack("<QQQII", program.entry, program.text_base,
                       program.data_base, len(program.text),
                       len(program.data))


def compute_signature(program: Program, include_data: bool = False) -> bytes:
    """256-bit signature over metadata || text [|| data]."""
    h = SHA256(_metadata(program))
    h.update(program.text)
    if include_data:
        h.update(program.data)
    return h.digest()


class StreamingSignatureGenerator:
    """The HDE-side Signature Generator: absorbs the program as it is
    decrypted and reports its cycle cost (one cycle per compression
    round on the serialized core)."""

    def __init__(self, program_metadata: bytes) -> None:
        self._hash = SHA256(program_metadata)

    @classmethod
    def for_program(cls, program: Program) -> "StreamingSignatureGenerator":
        return cls(_metadata(program))

    def absorb(self, chunk: bytes) -> None:
        self._hash.update(chunk)

    def digest(self) -> bytes:
        return self._hash.digest()

    @property
    def cycles(self) -> int:
        # +1 block for the final padding block (upper bound).
        return (self._hash.blocks_processed + 1) * ROUNDS_PER_BLOCK
