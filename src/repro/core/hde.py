"""Hardware Decryption Engine — the paper's §III.2 hardware architecture.

``process(package_bytes)`` executes steps ⑤-⑥ of Fig. 3:

1. **PUF Key Generator** reads the physical PUF (majority-voted).
2. **Key Management Unit** converts the PUF key into the PUF-based key
   for the configured epoch and derives the cipher keys.
3. **Decryption Unit** walks the instruction slots: for every map-flagged
   slot it XORs keystream (addressed by the slot's byte offset); slot
   sizes are discovered from the RISC-V length bits as decryption
   proceeds, so the package needs only 1 map bit per instruction.
4. **Signature Generator** hashes the decrypted image as it streams by.
5. **Validation Unit** decrypts the carried signature and compares; on
   mismatch the program never reaches the core (``ValidationError``).

Every step reports cycles from the same datapath widths the area model
uses (64-round serialized SHA, 64-bit XOR lane), which is what makes the
Fig. 7 end-to-end overhead reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import InstructionSlot, Program
from repro.core.config import EncryptionMode
from repro.core.keys import KMU_SETUP_CYCLES, KeyManagementUnit, \
    puf_based_key, recover_group_key
from repro.core.package import ProgramPackage
from repro.core.signature import StreamingSignatureGenerator, \
    compute_signature
from repro.errors import ConfigError, ValidationError
from repro.puf.environment import NOMINAL, Environment
from repro.puf.key_generator import PufKeyGenerator

#: Decryption Unit datapath: bytes XORed per cycle.
XOR_BYTES_PER_CYCLE = 8
#: Cycles to advance the slot walk (map shift + length check).
SLOT_WALK_CYCLES = 1
#: Cycles to decrypt the 256-bit carried signature on the 64-bit lane.
SIGNATURE_DECRYPT_CYCLES = 4
#: Cycles for the streaming 32-bit signature comparison.
SIGNATURE_COMPARE_CYCLES = 8


@dataclass
class HdeReport:
    """Cycle breakdown of one package decryption (per HDE unit)."""

    puf_keygen_cycles: int = 0
    kmu_cycles: int = 0
    decrypt_cycles: int = 0
    signature_cycles: int = 0
    validation_cycles: int = 0
    signature_ok: bool = False
    decrypted_slots: int = 0
    total_slots: int = 0
    #: overlapped mode (paper §VI future work): the Decryption Unit and
    #: the Signature Generator run as a pipeline, so the slower of the
    #: two hides the faster instead of adding to it.
    overlapped: bool = False

    @property
    def serial_cycles(self) -> int:
        """Cycle total under serial accounting (decrypt, then hash),
        whatever mode actually ran — the overlapped-HDE ablation's
        per-record baseline."""
        return (self.puf_keygen_cycles + self.kmu_cycles
                + self.decrypt_cycles + self.signature_cycles
                + self.validation_cycles)

    @property
    def total_cycles(self) -> int:
        if self.overlapped:
            return (self.puf_keygen_cycles + self.kmu_cycles
                    + max(self.decrypt_cycles, self.signature_cycles)
                    + self.validation_cycles)
        return self.serial_cycles


class HardwareDecryptionEngine:
    """The HDE block bolted onto the SoC (outside the core, §V)."""

    def __init__(self, pkg: PufKeyGenerator, epoch: bytes = b"epoch-0",
                 environment: Environment = NOMINAL,
                 overlapped: bool = False) -> None:
        self.pkg = pkg
        self.epoch = epoch
        self.environment = environment
        #: paper §VI future work: pipeline the Decryption Unit with the
        #: Signature Generator (both stream the same decrypted words)
        self.overlapped = overlapped

    def process(self, package_bytes: bytes,
                key_mask: bytes | None = None,
                ) -> tuple[Program, HdeReport]:
        """Decrypt, verify and release a program for execution.

        Args:
            package_bytes: the received program package.
            key_mask: optional fleet helper data; when given, the KMU
                uses ``pbk XOR mask`` (the group key) instead of the
                device's own PUF-based key.

        Raises:
            PackageFormatError: structurally broken package.
            ValidationError: signature mismatch — wrong device, wrong
                epoch, or tampering in transit.
        """
        package = ProgramPackage.deserialize(package_bytes)
        report = HdeReport(total_slots=package.enc_map.count,
                           overlapped=self.overlapped)

        # ① PUF key readout + ② KMU conversion/derivation
        readout = self.pkg.generate(self.environment)
        report.puf_keygen_cycles = readout.cycles
        pbk = puf_based_key(readout.key, self.epoch)
        if key_mask is not None:
            pbk = recover_group_key(pbk, key_mask)
        kmu = KeyManagementUnit(pbk)
        try:
            text_cipher = kmu.text_cipher(package.cipher)
            signature_cipher = kmu.signature_cipher(package.cipher)
        except ConfigError as exc:
            # a corrupted/hostile header naming an unknown cipher must
            # fail closed like any other tampering
            raise ValidationError(
                f"package names an unsupported cipher: {exc}") from None
        report.kmu_cycles = KMU_SETUP_CYCLES

        # ⑤ decryption walk
        plaintext, layout, decrypt_cycles, decrypted = self._decrypt_walk(
            package, text_cipher)
        report.decrypt_cycles = decrypt_cycles
        report.decrypted_slots = decrypted

        data = package.data
        if package.data_encrypted and data:
            data = kmu.data_cipher(package.cipher).transform(data, 0)
            report.decrypt_cycles += (len(data) + XOR_BYTES_PER_CYCLE - 1) \
                // XOR_BYTES_PER_CYCLE

        program = Program(
            text=plaintext, data=data,
            text_base=package.text_base, data_base=package.data_base,
            entry=package.entry, layout=layout,
        )

        # ⑤ signature regeneration (streams over the decrypted image;
        # the data section is covered only when the package says so)
        generator = StreamingSignatureGenerator.for_program(program)
        generator.absorb(program.text)
        if package.data_signed:
            generator.absorb(program.data)
        computed = generator.digest()
        report.signature_cycles = generator.cycles

        # ⑥ validation
        carried = signature_cipher.transform(package.enc_signature, 0)
        report.validation_cycles = (SIGNATURE_DECRYPT_CYCLES
                                    + SIGNATURE_COMPARE_CYCLES)
        if carried != computed:
            raise ValidationError(
                "signature mismatch: package was not produced for this "
                "device/epoch or was modified in transit")
        report.signature_ok = True
        return program, report

    def _decrypt_walk(self, package: ProgramPackage, cipher
                      ) -> tuple[bytes, tuple, int, int]:
        """Walk instruction slots, decrypting flagged ones in place.

        Slot sizes come from the RISC-V length bits of the (possibly
        just-decrypted) first halfword, so only the 1-bit-per-instruction
        map is needed — exactly the paper's accounting.
        """
        text = bytearray(package.enc_text)
        enc_map = package.enc_map
        mode = package.mode
        slots = []
        cycles = 0
        decrypted = 0
        offset = 0
        for index in range(enc_map.count):
            cycles += SLOT_WALK_CYCLES
            if offset + 2 > len(text):
                raise ValidationError(
                    "slot walk ran past the text section (corrupt package "
                    "or wrong key)")
            flagged = enc_map[index]
            if flagged and mode is not EncryptionMode.FIELD:
                # decrypt the first halfword to see the length bits
                first = cipher.transform(bytes(text[offset:offset + 2]),
                                         offset)
                text[offset:offset + 2] = first
                halfword = int.from_bytes(first, "little")
                size = 4 if halfword & 0b11 == 0b11 else 2
                if size == 4:
                    if offset + 4 > len(text):
                        raise ValidationError(
                            "slot walk ran past the text section")
                    text[offset + 2:offset + 4] = cipher.transform(
                        bytes(text[offset + 2:offset + 4]), offset + 2)
                cycles += (size + XOR_BYTES_PER_CYCLE - 1) \
                    // XOR_BYTES_PER_CYCLE
                decrypted += 1
            else:
                halfword = int.from_bytes(text[offset:offset + 2], "little")
                size = 4 if halfword & 0b11 == 0b11 else 2
                if flagged:  # FIELD mode: 32-bit slot, masked bits only
                    if size != 4 or offset + 4 > len(text):
                        raise ValidationError(
                            "field-encrypted slot is not a 32-bit "
                            "instruction")
                    from repro.isa.fields import encryptable_mask
                    word = int.from_bytes(text[offset:offset + 4], "little")
                    try:
                        mask = encryptable_mask(word,
                                                package.field_classes)
                    except Exception as exc:  # DecodingError and kin
                        raise ValidationError(
                            f"cannot derive field mask at offset "
                            f"{offset:#x}: {exc}") from None
                    stream = int.from_bytes(cipher.keystream(offset, 4),
                                            "little")
                    word ^= stream & mask
                    text[offset:offset + 4] = word.to_bytes(4, "little")
                    cycles += 1
                    decrypted += 1
            if offset + size > len(text):
                raise ValidationError("slot walk ran past the text section")
            slots.append(InstructionSlot(offset=offset, size=size))
            offset += size
        if offset != len(text):
            raise ValidationError(
                f"slot walk ended at {offset} but text is {len(text)} "
                "bytes (corrupt package or wrong key)")
        return bytes(text), tuple(slots), cycles, decrypted


def verify_roundtrip(program: Program, package_bytes: bytes,
                     hde: HardwareDecryptionEngine) -> bool:
    """Debug helper: does the HDE reproduce ``program`` exactly?"""
    recovered, _ = hde.process(package_bytes)
    return (recovered.text == program.text
            and recovered.data == program.data
            and recovered.entry == program.entry
            and compute_signature(recovered) == compute_signature(program))
