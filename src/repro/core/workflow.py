"""The end-to-end Fig. 3 flow, steps ① through ⑥, as one function.

``deploy`` is the narrative of the paper in code: enroll the device,
compile+sign+encrypt for it, ship the package over an (optionally
hostile) network, and have the device decrypt/validate/run it.  The
examples and the integration tests are built on this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler_driver import EricCompileResult, EricCompiler
from repro.core.config import EricConfig
from repro.core.device import Device, DeviceRunResult
from repro.core.provisioning import DeviceRegistry
from repro.net.channel import UntrustedChannel


@dataclass
class DeploymentResult:
    """Everything observable from one secure deployment."""

    compile_result: EricCompileResult
    delivered_bytes: bytes
    run_result: DeviceRunResult

    @property
    def stdout(self) -> str:
        return self.run_result.run.stdout

    @property
    def exit_code(self) -> int:
        return self.run_result.run.exit_code

    @property
    def total_cycles(self) -> int:
        return self.run_result.total_cycles


def deploy(source: str, device: Device,
           config: EricConfig | None = None,
           channel: UntrustedChannel | None = None,
           registry: DeviceRegistry | None = None,
           name: str = "program",
           max_instructions: int = 20_000_000) -> DeploymentResult:
    """Run the whole ①-⑥ flow for one program on one device.

    Any :class:`repro.errors.ValidationError` raised by the device (e.g.
    because the channel tampered with the package) propagates to the
    caller — the program does not run.
    """
    registry = registry or DeviceRegistry()
    if device.device_id not in registry.enrolled:
        registry.enroll(device)                         # step ①
    target_key = registry.handshake(device.device_id)   # handshake

    compiler = EricCompiler(config)                     # step ②
    result = compiler.compile_and_package(source, target_key,
                                          name=name)    # step ③

    channel = channel or UntrustedChannel()
    delivered = channel.transfer(result.package_bytes)  # step ④

    run_result = device.load_and_run(                   # steps ⑤-⑥
        delivered, max_instructions=max_instructions)
    return DeploymentResult(compile_result=result,
                            delivered_bytes=delivered,
                            run_result=run_result)
