"""The end-to-end Fig. 3 flow, steps ① through ⑥, as one function.

``deploy`` is the narrative of the paper in code: enroll the device,
compile+sign+encrypt for it, ship the package over an (optionally
hostile) network, and have the device decrypt/validate/run it.  The
examples and the integration tests are built on this.

Since the ``repro.service`` redesign this is a convenience wrapper over
a throwaway :class:`repro.service.session.DeploymentSession`; anything
deploying more than once — and certainly anything deploying to a fleet —
should hold a session instead and get artifact caching for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler_driver import EricCompileResult
from repro.core.config import EricConfig
from repro.core.device import Device, DeviceRunResult
from repro.core.provisioning import DeviceRegistry
from repro.net.channel import UntrustedChannel


@dataclass
class DeploymentResult:
    """Everything observable from one secure deployment."""

    compile_result: EricCompileResult
    delivered_bytes: bytes
    run_result: DeviceRunResult

    @property
    def stdout(self) -> str:
        return self.run_result.run.stdout

    @property
    def exit_code(self) -> int:
        return self.run_result.run.exit_code

    @property
    def total_cycles(self) -> int:
        return self.run_result.total_cycles


def deploy(source: str, device: Device,
           config: EricConfig | None = None,
           channel: UntrustedChannel | None = None,
           registry: DeviceRegistry | None = None,
           name: str = "program",
           max_instructions: int = 20_000_000) -> DeploymentResult:
    """Run the whole ①-⑥ flow for one program on one device.

    Any :class:`repro.errors.ValidationError` raised by the device (e.g.
    because the channel tampered with the package) propagates to the
    caller — the program does not run.
    """
    # Imported here: repro.service builds on this module (it reuses
    # DeploymentResult), so the dependency must stay one-way at import
    # time.
    from repro.service.session import DeploymentSession

    session = DeploymentSession(config, registry=registry)
    return session.deploy(source, device, channel=channel, name=name,
                          max_instructions=max_instructions)
