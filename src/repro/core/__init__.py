"""ERIC core: the paper's primary contribution.

Software side (runs at the software source):

* :mod:`repro.core.config`          — encryption configuration (the GUI's
  decision surface) and the Table I test environment
* :mod:`repro.core.keys`            — Key Management Unit: PUF key ->
  PUF-based key -> per-purpose keys; fleet helper data
* :mod:`repro.core.signature`       — Signature Generator (SHA-256)
* :mod:`repro.core.encryptor`       — full / partial / field-level
  encryption + the encryption map
* :mod:`repro.core.package`         — the program-package wire format
* :mod:`repro.core.compiler_driver` — the ERIC compiler (compile, sign,
  encrypt, package; with stage timings for Fig. 6)

Hardware side (runs in the target device):

* :mod:`repro.core.hde`             — Hardware Decryption Engine
  (Decryption Unit, Signature Generator, Validation Unit, KMU, PKG
  integration; cycle-cost model for Fig. 7)
* :mod:`repro.core.device`          — a target device: PUF + HDE + SoC

Deployment plumbing:

* :mod:`repro.core.provisioning`    — enrollment registry, device groups
* :mod:`repro.core.interface`       — declarative config front end
* :mod:`repro.core.workflow`        — the end-to-end Fig. 3 flow ①-⑥
  (one-shot; fleet-scale deployment lives in :mod:`repro.service`)

The compiler is split along the device boundary:
:meth:`EricCompiler.prepare` yields a :class:`CompiledArtifact` (compile
+ sign + slot selection, device-independent) and
:meth:`EricCompiler.package_artifact` binds it to one device key — the
foundation of the compile-once/encrypt-per-device fleet pipeline.
"""

from repro.core.config import EncryptionMode, EricConfig, TABLE_I_ENVIRONMENT
from repro.core.keys import KeyManagementUnit, puf_based_key
from repro.core.signature import compute_signature
from repro.core.encryptor import EncryptionMap, encrypt_program
from repro.core.package import ProgramPackage
from repro.core.compiler_driver import (CompiledArtifact, EricCompiler,
                                        EricCompileResult, source_digest)
from repro.core.hde import HardwareDecryptionEngine, HdeReport
from repro.core.device import Device, DeviceRunResult
from repro.core.provisioning import DeviceRegistry
from repro.core.workflow import deploy, DeploymentResult

__all__ = [
    "CompiledArtifact",
    "EncryptionMode",
    "EricConfig",
    "TABLE_I_ENVIRONMENT",
    "source_digest",
    "KeyManagementUnit",
    "puf_based_key",
    "compute_signature",
    "EncryptionMap",
    "encrypt_program",
    "ProgramPackage",
    "EricCompiler",
    "EricCompileResult",
    "HardwareDecryptionEngine",
    "HdeReport",
    "Device",
    "DeviceRunResult",
    "DeviceRegistry",
    "deploy",
    "DeploymentResult",
]
