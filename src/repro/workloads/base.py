"""Workload infrastructure.

Every workload is a self-contained MiniC program plus a pure-Python
reference implementation that computes the exact expected stdout.  The
test suite runs each program on the SoC and compares against the oracle —
that equivalence is what lets the figure benchmarks trust the simulator.

Workloads that need input data generate it *inside the program* with the
shared LCG below (embedded in the MiniC source and mirrored in Python),
so programs stay single-file and deterministic with no loader support.
"""

from __future__ import annotations

from dataclasses import dataclass

#: MiniC PRNG (embedded in workload sources).  The multiply wraps modulo
#: 2^64 exactly like the mirrored Python version; masking with 2^63-1
#: keeps values positive so `>>` and `%` agree between C and Python.
MINIC_RNG = """
int rng_state = 0;

int rng_next() {
    rng_state = (rng_state * 6364136223846793005 + 1442695040888963407)
                & 0x7FFFFFFFFFFFFFFF;
    return rng_state >> 16;
}
"""

_MASK63 = (1 << 63) - 1
_MASK64 = (1 << 64) - 1


class MiniRng:
    """Python mirror of the MiniC PRNG."""

    def __init__(self, seed: int = 0) -> None:
        self.state = seed

    def next(self) -> int:
        self.state = (self.state * 6364136223846793005
                      + 1442695040888963407) & _MASK64 & _MASK63
        return self.state >> 16


@dataclass(frozen=True)
class Workload:
    """One benchmark program with its oracle."""

    name: str
    mibench_counterpart: str
    description: str
    source: str
    expected_stdout: str

    def __post_init__(self) -> None:
        if not self.expected_stdout:
            raise ValueError(f"workload {self.name} has an empty oracle")
