"""stringsearch — MiBench `office/stringsearch` counterpart.

Boyer–Moore–Horspool search of several patterns over a synthetic corpus
(words sampled by the shared PRNG), counting the occurrences of each
pattern — the same structure as MiBench's pattern-set-over-text search.
"""

from __future__ import annotations

from repro.workloads.base import MINIC_RNG, MiniRng, Workload

_SEED = 2501
_WORDS = ("secure", "engine", "rocket", "cipher", "packet", "kernel",
          "branch", "memory")
_CORPUS_WORDS = 60
_PATTERNS = ("cipher", "rocket", "ene", "ketsec", "zzz")


def _corpus() -> bytes:
    rng = MiniRng(_SEED)
    parts = []
    for _ in range(_CORPUS_WORDS):
        parts.append(_WORDS[rng.next() % len(_WORDS)])
    return "".join(parts).encode()


def _horspool_count(text: bytes, pattern: bytes) -> int:
    m = len(pattern)
    if m == 0 or m > len(text):
        return 0
    shift = {pattern[i]: m - 1 - i for i in range(m - 1)}
    count = 0
    pos = 0
    while pos + m <= len(text):
        if text[pos:pos + m] == pattern:
            count += 1
        last = text[pos + m - 1]
        pos += shift.get(last, m)
    return count


def _reference() -> str:
    text = _corpus()
    return "".join(f"{_horspool_count(text, p.encode())}\n"
                   for p in _PATTERNS)


_WORD_TABLE = "".join(_WORDS)
_WORD_LEN = len(_WORDS[0])
assert all(len(w) == _WORD_LEN for w in _WORDS)
_CORPUS_LEN = _CORPUS_WORDS * _WORD_LEN
_PATTERN_BLOB = "".join(_PATTERNS)
_PATTERN_OFFSETS = []
_off = 0
for _p in _PATTERNS:
    _PATTERN_OFFSETS.append(_off)
    _off += len(_p)
_PATTERN_LENS = [len(p) for p in _PATTERNS]


_SOURCE = f"""
{MINIC_RNG}

char words[] = "{_WORD_TABLE}";
char corpus[{_CORPUS_LEN}];
char patterns[] = "{_PATTERN_BLOB}";
int pattern_offset[{len(_PATTERNS)}] = {{{", ".join(str(v) for v in _PATTERN_OFFSETS)}}};
int pattern_len[{len(_PATTERNS)}] = {{{", ".join(str(v) for v in _PATTERN_LENS)}}};
int shift[256];

void build_corpus() {{
    rng_state = {_SEED};
    int pos = 0;
    for (int w = 0; w < {_CORPUS_WORDS}; w++) {{
        int word = rng_next() % {len(_WORDS)};
        for (int c = 0; c < {_WORD_LEN}; c++) {{
            corpus[pos] = words[word * {_WORD_LEN} + c];
            pos++;
        }}
    }}
}}

int horspool(char *pattern, int m) {{
    if (m == 0 || m > {_CORPUS_LEN}) {{ return 0; }}
    for (int i = 0; i < 256; i++) {{ shift[i] = m; }}
    for (int i = 0; i < m - 1; i++) {{ shift[pattern[i]] = m - 1 - i; }}
    int count = 0;
    int pos = 0;
    while (pos + m <= {_CORPUS_LEN}) {{
        int match = 1;
        for (int i = 0; i < m; i++) {{
            if (corpus[pos + i] != pattern[i]) {{
                match = 0;
                break;
            }}
        }}
        count += match;
        pos += shift[corpus[pos + m - 1]];
    }}
    return count;
}}

int main() {{
    build_corpus();
    for (int p = 0; p < {len(_PATTERNS)}; p++) {{
        int count = horspool(&patterns[pattern_offset[p]], pattern_len[p]);
        print_int(count);
        print_char('\\n');
    }}
    return 0;
}}
"""

WORKLOAD = Workload(
    name="stringsearch",
    mibench_counterpart="office/stringsearch",
    description="Horspool multi-pattern search over a synthetic corpus",
    source=_SOURCE,
    expected_stdout=_reference(),
)
