"""crc32 — MiBench `telecomm/CRC32` counterpart.

Table-driven CRC-32 (IEEE 802.3 polynomial, reflected form 0xEDB88320):
the program builds the 256-entry table at runtime and folds a
pseudorandom buffer through it — the same structure as MiBench's crc32,
which streams file bytes through a precomputed table.
"""

from __future__ import annotations

from repro.workloads.base import MINIC_RNG, MiniRng, Workload

_SEED = 90125
_BYTES = 150
_POLY = 0xEDB88320


def _reference() -> str:
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ _POLY if c & 1 else c >> 1
        table.append(c)
    rng = MiniRng(_SEED)
    crc = 0xFFFFFFFF
    for _ in range(_BYTES):
        byte = rng.next() & 0xFF
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    crc ^= 0xFFFFFFFF
    return f"{crc}\n"


_SOURCE = f"""
{MINIC_RNG}

int table[256];

void build_table() {{
    for (int n = 0; n < 256; n++) {{
        int c = n;
        for (int k = 0; k < 8; k++) {{
            if (c & 1) {{
                c = (c >> 1) ^ {_POLY};
            }} else {{
                c = c >> 1;
            }}
        }}
        table[n] = c;
    }}
}}

int main() {{
    build_table();
    rng_state = {_SEED};
    int crc = 0xFFFFFFFF;
    for (int i = 0; i < {_BYTES}; i++) {{
        int byte = rng_next() & 0xFF;
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF];
    }}
    crc = crc ^ 0xFFFFFFFF;
    print_int(crc);
    print_char('\\n');
    return 0;
}}
"""

WORKLOAD = Workload(
    name="crc32",
    mibench_counterpart="telecomm/CRC32",
    description="table-driven CRC-32 over a PRNG buffer",
    source=_SOURCE,
    expected_stdout=_reference(),
)
