"""basicmath — MiBench `basicmath_small` counterpart.

Integer square roots (bit-by-bit method), cube-root isolation by integer
Newton iteration, and fixed-point degree->radian conversion: the same
"simple math we take for granted" mix MiBench motivates, in 64-bit
integer arithmetic.
"""

from __future__ import annotations

from repro.workloads.base import Workload

_N_SQRT = 30
_CUBES = [7, 100, 2197, 40000, 777777, 12345678]
_N_ANGLES = 60
_SCALE = 10000
_PI_FIXED = 31416  # pi * SCALE, truncated


def _isqrt(value: int) -> int:
    """Bit-by-bit integer square root (the MiBench `usqrt` method)."""
    root = 0
    bit = 1 << 62
    while bit > value:
        bit >>= 2
    while bit != 0:
        if value >= root + bit:
            value -= root + bit
            root = (root >> 1) + bit
        else:
            root >>= 1
        bit >>= 2
    return root


def _icbrt(target: int) -> int:
    """Integer cube root by Newton iteration (floor)."""
    if target == 0:
        return 0
    x = target
    y = (2 * x + target // (x * x)) // 3
    while y < x:
        x = y
        y = (2 * x + target // (x * x)) // 3
    return x


def _reference() -> str:
    sqrt_sum = sum(_isqrt(i * i * 7 + i) for i in range(1, _N_SQRT + 1))
    cbrt_sum = sum(_icbrt(c) for c in _CUBES)
    rad_sum = sum(deg * _PI_FIXED // 180 for deg in range(_N_ANGLES))
    return f"{sqrt_sum}\n{cbrt_sum}\n{rad_sum}\n"


_SOURCE = f"""
int isqrt(int value) {{
    int root = 0;
    int bit = 1;
    bit = bit << 62;
    while (bit > value) {{ bit = bit >> 2; }}
    while (bit != 0) {{
        if (value >= root + bit) {{
            value -= root + bit;
            root = (root >> 1) + bit;
        }} else {{
            root = root >> 1;
        }}
        bit = bit >> 2;
    }}
    return root;
}}

int icbrt(int target) {{
    if (target == 0) {{ return 0; }}
    int x = target;
    int y = (2 * x + target / (x * x)) / 3;
    while (y < x) {{
        x = y;
        y = (2 * x + target / (x * x)) / 3;
    }}
    return x;
}}

int cubes[{len(_CUBES)}] = {{{", ".join(str(c) for c in _CUBES)}}};

int main() {{
    int sqrt_sum = 0;
    for (int i = 1; i <= {_N_SQRT}; i++) {{
        sqrt_sum += isqrt(i * i * 7 + i);
    }}
    print_int(sqrt_sum);
    print_char('\\n');

    int cbrt_sum = 0;
    for (int i = 0; i < {len(_CUBES)}; i++) {{
        cbrt_sum += icbrt(cubes[i]);
    }}
    print_int(cbrt_sum);
    print_char('\\n');

    int rad_sum = 0;
    for (int deg = 0; deg < {_N_ANGLES}; deg++) {{
        rad_sum += deg * {_PI_FIXED} / 180;
    }}
    print_int(rad_sum);
    print_char('\\n');
    return 0;
}}
"""

WORKLOAD = Workload(
    name="basicmath",
    mibench_counterpart="automotive/basicmath_small",
    description="integer sqrt, cube roots, fixed-point angle conversion",
    source=_SOURCE,
    expected_stdout=_reference(),
)
