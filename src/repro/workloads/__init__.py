"""MiBench-counterpart workloads (paper §IV: "MiBench is used as a
benchmark ... programs of MiBench which is capable with LLVM and RISC-V
... programs of different sizes").

Eight programs spanning the size/dynamic-length space the figures sweep:

===============  ==============================  =========================
name             MiBench counterpart             flavour
===============  ==============================  =========================
basicmath        automotive/basicmath_small      integer math kernels
bitcount         automotive/bitcount             bit tricks, table lookup
qsort            automotive/qsort_small          recursion, swaps
crc32            telecomm/CRC32                  table-driven streaming
dijkstra         network/dijkstra                O(N^2) graph relaxation
fft              telecomm/FFT                    fixed-point butterflies
sha              security/sha                    SHA-256 in MiniC
stringsearch     office/stringsearch             Horspool text search
===============  ==============================  =========================

Every workload carries a pure-Python oracle for its exact stdout.
"""

from repro.workloads.base import MiniRng, Workload
from repro.workloads import (
    basicmath,
    bitcount,
    crc32,
    dijkstra,
    fft,
    qsort,
    sha,
    stringsearch,
)

_MODULES = (basicmath, bitcount, qsort, crc32, dijkstra, fft, sha,
            stringsearch)

WORKLOADS: dict[str, Workload] = {
    module.WORKLOAD.name: module.WORKLOAD for module in _MODULES
}


def all_workloads() -> dict[str, Workload]:
    """Name -> workload, in suite order."""
    return dict(WORKLOADS)


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


__all__ = ["Workload", "MiniRng", "WORKLOADS", "all_workloads",
           "get_workload"]
