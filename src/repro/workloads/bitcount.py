"""bitcount — MiBench `automotive/bitcount` counterpart.

Counts bits with four of MiBench's methods (naive shift loop, Kernighan's
clear-lowest-set, a 4-bit table, and the SWAR parallel reduction) over the
same pseudorandom input stream, printing each method's total.
"""

from __future__ import annotations

from repro.workloads.base import MINIC_RNG, MiniRng, Workload

_SEED = 7321
_VALUES = 50
_NIBBLE_TABLE = [bin(i).count("1") for i in range(16)]


def _reference() -> str:
    totals = [0, 0, 0, 0]
    rng = MiniRng(_SEED)
    for _ in range(_VALUES):
        value = rng.next()
        totals[0] += bin(value).count("1")
        totals[1] += bin(value).count("1")
        totals[2] += sum(_NIBBLE_TABLE[(value >> s) & 0xF]
                         for s in range(0, 48, 4))
        totals[3] += bin(value).count("1")
    return "".join(f"{t}\n" for t in totals)


_SOURCE = f"""
{MINIC_RNG}

int nibble_table[16] = {{{", ".join(str(v) for v in _NIBBLE_TABLE)}}};

int count_naive(int v) {{
    int n = 0;
    while (v) {{
        n += v & 1;
        v = v >> 1;
    }}
    return n;
}}

int count_kernighan(int v) {{
    int n = 0;
    while (v) {{
        v &= v - 1;
        n++;
    }}
    return n;
}}

int count_table(int v) {{
    int n = 0;
    for (int s = 0; s < 48; s += 4) {{
        n += nibble_table[(v >> s) & 15];
    }}
    return n;
}}

int count_swar(int v) {{
    v = v - ((v >> 1) & 0x5555555555555555);
    v = (v & 0x3333333333333333) + ((v >> 2) & 0x3333333333333333);
    v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0F;
    return (v * 0x0101010101010101 >> 56) & 0x7F;
}}

int main() {{
    rng_state = {_SEED};
    int t0 = 0;
    int t1 = 0;
    int t2 = 0;
    int t3 = 0;
    for (int i = 0; i < {_VALUES}; i++) {{
        int v = rng_next();
        t0 += count_naive(v);
        t1 += count_kernighan(v);
        t2 += count_table(v);
        t3 += count_swar(v);
    }}
    print_int(t0);
    print_char('\\n');
    print_int(t1);
    print_char('\\n');
    print_int(t2);
    print_char('\\n');
    print_int(t3);
    print_char('\\n');
    return 0;
}}
"""

WORKLOAD = Workload(
    name="bitcount",
    mibench_counterpart="automotive/bitcount",
    description="four bit-counting methods over a PRNG stream",
    source=_SOURCE,
    expected_stdout=_reference(),
)
