"""fft — MiBench `telecomm/FFT` counterpart.

In-place radix-2 decimation-in-time FFT in Q14 fixed point over a
pseudorandom signal.  Twiddle factors are compile-time constants
(embedded tables), inputs come from the shared PRNG, and every butterfly
uses the same integer arithmetic in MiniC and in the Python oracle
(arithmetic right shifts agree between the two).
"""

from __future__ import annotations

import math

from repro.workloads.base import MINIC_RNG, MiniRng, Workload

_SEED = 5150
_N = 64
_Q = 14
_ONE = 1 << _Q
_ROUNDS = 1
_PRIME = 1000003

_COS = [int(round(math.cos(2.0 * math.pi * k / _N) * _ONE))
        for k in range(_N // 2)]
_SIN = [int(round(math.sin(2.0 * math.pi * k / _N) * _ONE))
        for k in range(_N // 2)]


def _bit_reverse(index: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


def _fft_fixed(re: list[int], im: list[int]) -> None:
    bits = _N.bit_length() - 1
    for i in range(_N):
        j = _bit_reverse(i, bits)
        if j > i:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
    size = 2
    while size <= _N:
        half = size // 2
        step = _N // size
        for start in range(0, _N, size):
            for k in range(half):
                w_re = _COS[k * step]
                w_im = -_SIN[k * step]
                a = start + k
                b = a + half
                t_re = (re[b] * w_re - im[b] * w_im) >> _Q
                t_im = (re[b] * w_im + im[b] * w_re) >> _Q
                re[b] = (re[a] - t_re) >> 1
                im[b] = (im[a] - t_im) >> 1
                re[a] = (re[a] + t_re) >> 1
                im[a] = (im[a] + t_im) >> 1
        size *= 2


def _reference() -> str:
    rng = MiniRng(_SEED)
    checksum = 0
    for _ in range(_ROUNDS):
        re = [rng.next() % (2 * _ONE) - _ONE for _ in range(_N)]
        im = [0] * _N
        _fft_fixed(re, im)
        for i in range(_N):
            magnitude = abs(re[i]) + abs(im[i])
            checksum = (checksum * 31 + magnitude) % _PRIME
    return f"{checksum}\n"


def _table(values: list[int]) -> str:
    return ", ".join(str(v) for v in values)


_SOURCE = f"""
{MINIC_RNG}

int cos_table[{_N // 2}] = {{{_table(_COS)}}};
int sin_table[{_N // 2}] = {{{_table(_SIN)}}};
int re[{_N}];
int im[{_N}];

int bit_reverse(int index, int bits) {{
    int result = 0;
    for (int b = 0; b < bits; b++) {{
        result = (result << 1) | (index & 1);
        index = index >> 1;
    }}
    return result;
}}

void fft() {{
    int bits = {_N.bit_length() - 1};
    for (int i = 0; i < {_N}; i++) {{
        int j = bit_reverse(i, bits);
        if (j > i) {{
            int t = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }}
    }}
    int size = 2;
    while (size <= {_N}) {{
        int half = size / 2;
        int step = {_N} / size;
        for (int start = 0; start < {_N}; start += size) {{
            for (int k = 0; k < half; k++) {{
                int w_re = cos_table[k * step];
                int w_im = -sin_table[k * step];
                int a = start + k;
                int b = a + half;
                int t_re = (re[b] * w_re - im[b] * w_im) >> {_Q};
                int t_im = (re[b] * w_im + im[b] * w_re) >> {_Q};
                re[b] = (re[a] - t_re) >> 1;
                im[b] = (im[a] - t_im) >> 1;
                re[a] = (re[a] + t_re) >> 1;
                im[a] = (im[a] + t_im) >> 1;
            }}
        }}
        size *= 2;
    }}
}}

int iabs(int x) {{
    if (x < 0) {{ return -x; }}
    return x;
}}

int main() {{
    rng_state = {_SEED};
    int checksum = 0;
    for (int round = 0; round < {_ROUNDS}; round++) {{
        for (int i = 0; i < {_N}; i++) {{
            re[i] = rng_next() % {2 * _ONE} - {_ONE};
            im[i] = 0;
        }}
        fft();
        for (int i = 0; i < {_N}; i++) {{
            int magnitude = iabs(re[i]) + iabs(im[i]);
            checksum = (checksum * 31 + magnitude) % {_PRIME};
        }}
    }}
    print_int(checksum);
    print_char('\\n');
    return 0;
}}
"""

WORKLOAD = Workload(
    name="fft",
    mibench_counterpart="telecomm/FFT",
    description="Q14 fixed-point radix-2 FFT, several rounds",
    source=_SOURCE,
    expected_stdout=_reference(),
)
