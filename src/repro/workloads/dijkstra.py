"""dijkstra — MiBench `network/dijkstra` counterpart.

All-pairs-ish shortest paths: O(N^2) Dijkstra (no heap, exactly like the
MiBench kernel) over a dense pseudorandom weight matrix, from several
source nodes, accumulating the distance sum.
"""

from __future__ import annotations

from repro.workloads.base import MINIC_RNG, MiniRng, Workload

_SEED = 31337
_N = 28
_SOURCES = 1
_INF = 1 << 40


def _make_matrix() -> list[list[int]]:
    # NB: the MiniC program draws from the PRNG for every (i, j) pair,
    # including the diagonal it then zeroes — consume identically here.
    rng = MiniRng(_SEED)
    matrix = []
    for i in range(_N):
        row = []
        for j in range(_N):
            weight = rng.next() % 50 + 1
            row.append(0 if i == j else weight)
        matrix.append(row)
    return matrix


def _reference() -> str:
    adj = _make_matrix()
    total = 0
    for source in range(_SOURCES):
        dist = [_INF] * _N
        done = [False] * _N
        dist[source] = 0
        for _ in range(_N):
            best = -1
            best_distance = _INF + 1
            for v in range(_N):
                if not done[v] and dist[v] < best_distance:
                    best_distance = dist[v]
                    best = v
            done[best] = True
            for v in range(_N):
                candidate = dist[best] + adj[best][v]
                if candidate < dist[v]:
                    dist[v] = candidate
        total += sum(dist)
    return f"{total}\n"


_SOURCE = f"""
{MINIC_RNG}

int adj[{_N * _N}];
int dist[{_N}];
int done[{_N}];

void build_graph() {{
    rng_state = {_SEED};
    for (int i = 0; i < {_N}; i++) {{
        for (int j = 0; j < {_N}; j++) {{
            int w = rng_next() % 50 + 1;
            if (i == j) {{ w = 0; }}
            adj[i * {_N} + j] = w;
        }}
    }}
}}

int run_dijkstra(int source) {{
    for (int v = 0; v < {_N}; v++) {{
        dist[v] = {_INF};
        done[v] = 0;
    }}
    dist[source] = 0;
    for (int round = 0; round < {_N}; round++) {{
        int best = -1;
        int best_distance = {_INF} + 1;
        for (int v = 0; v < {_N}; v++) {{
            if (!done[v] && dist[v] < best_distance) {{
                best_distance = dist[v];
                best = v;
            }}
        }}
        done[best] = 1;
        for (int v = 0; v < {_N}; v++) {{
            int candidate = dist[best] + adj[best * {_N} + v];
            if (candidate < dist[v]) {{
                dist[v] = candidate;
            }}
        }}
    }}
    int sum = 0;
    for (int v = 0; v < {_N}; v++) {{
        sum += dist[v];
    }}
    return sum;
}}

int main() {{
    build_graph();
    int total = 0;
    for (int s = 0; s < {_SOURCES}; s++) {{
        total += run_dijkstra(s);
    }}
    print_int(total);
    print_char('\\n');
    return 0;
}}
"""

WORKLOAD = Workload(
    name="dijkstra",
    mibench_counterpart="network/dijkstra",
    description="O(N^2) Dijkstra from several sources on a dense graph",
    source=_SOURCE,
    expected_stdout=_reference(),
)
