"""sha — MiBench `security/sha` counterpart.

A full SHA-256 implementation *in MiniC* (the MiBench suite hashes input
files with SHA; we hash a pseudorandom message, twice, chaining).  All
arithmetic is 32-bit modular via explicit masking; the oracle is the
repository's own from-scratch SHA-256 over the byte-identical message.
"""

from __future__ import annotations

from repro.crypto.sha256 import sha256
from repro.workloads.base import MINIC_RNG, MiniRng, Workload

_SEED = 60486
_MESSAGE_BYTES = 128
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)
_H0 = (0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
       0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19)


def _message() -> bytes:
    rng = MiniRng(_SEED)
    return bytes(rng.next() & 0xFF for _ in range(_MESSAGE_BYTES))


def _reference() -> str:
    digest = sha256(sha256(_message()))
    words = [int.from_bytes(digest[i:i + 4], "big") for i in range(0, 32, 4)]
    return "".join(f"{w}\n" for w in words)


_SOURCE = f"""
{MINIC_RNG}

int K[64] = {{{", ".join(str(k) for k in _K)}}};
int H[8];
char msg[{_MESSAGE_BYTES + 128}];
char out[32];
int W[64];

int rotr(int x, int n) {{
    return ((x >> n) | (x << (32 - n))) & 0xFFFFFFFF;
}}

void sha256_run(int msg_len) {{
    H[0] = {_H0[0]}; H[1] = {_H0[1]}; H[2] = {_H0[2]}; H[3] = {_H0[3]};
    H[4] = {_H0[4]}; H[5] = {_H0[5]}; H[6] = {_H0[6]}; H[7] = {_H0[7]};

    // padding: 0x80, zeros, 64-bit big-endian bit length
    int total = msg_len + 1;
    msg[msg_len] = 0x80;
    while (total % 64 != 56) {{
        msg[total] = 0;
        total++;
    }}
    int bits = msg_len * 8;
    for (int i = 7; i >= 0; i--) {{
        msg[total + i] = bits & 0xFF;
        bits = bits >> 8;
    }}
    total += 8;

    for (int block = 0; block < total; block += 64) {{
        for (int t = 0; t < 16; t++) {{
            W[t] = (msg[block + 4 * t] << 24)
                 | (msg[block + 4 * t + 1] << 16)
                 | (msg[block + 4 * t + 2] << 8)
                 | msg[block + 4 * t + 3];
        }}
        for (int t = 16; t < 64; t++) {{
            int s0 = rotr(W[t - 15], 7) ^ rotr(W[t - 15], 18)
                   ^ (W[t - 15] >> 3);
            int s1 = rotr(W[t - 2], 17) ^ rotr(W[t - 2], 19)
                   ^ (W[t - 2] >> 10);
            W[t] = (W[t - 16] + s0 + W[t - 7] + s1) & 0xFFFFFFFF;
        }}
        int a = H[0]; int b = H[1]; int c = H[2]; int d = H[3];
        int e = H[4]; int f = H[5]; int g = H[6]; int h = H[7];
        for (int t = 0; t < 64; t++) {{
            int s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            int ch = (e & f) ^ (~e & g);
            int temp1 = (h + s1 + ch + K[t] + W[t]) & 0xFFFFFFFF;
            int s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            int maj = (a & b) ^ (a & c) ^ (b & c);
            int temp2 = (s0 + maj) & 0xFFFFFFFF;
            h = g; g = f; f = e;
            e = (d + temp1) & 0xFFFFFFFF;
            d = c; c = b; b = a;
            a = (temp1 + temp2) & 0xFFFFFFFF;
        }}
        H[0] = (H[0] + a) & 0xFFFFFFFF;
        H[1] = (H[1] + b) & 0xFFFFFFFF;
        H[2] = (H[2] + c) & 0xFFFFFFFF;
        H[3] = (H[3] + d) & 0xFFFFFFFF;
        H[4] = (H[4] + e) & 0xFFFFFFFF;
        H[5] = (H[5] + f) & 0xFFFFFFFF;
        H[6] = (H[6] + g) & 0xFFFFFFFF;
        H[7] = (H[7] + h) & 0xFFFFFFFF;
    }}

    for (int i = 0; i < 8; i++) {{
        out[4 * i] = (H[i] >> 24) & 0xFF;
        out[4 * i + 1] = (H[i] >> 16) & 0xFF;
        out[4 * i + 2] = (H[i] >> 8) & 0xFF;
        out[4 * i + 3] = H[i] & 0xFF;
    }}
}}

int main() {{
    rng_state = {_SEED};
    for (int i = 0; i < {_MESSAGE_BYTES}; i++) {{
        msg[i] = rng_next() & 0xFF;
    }}
    sha256_run({_MESSAGE_BYTES});

    // second pass: hash the 32-byte digest (digest-of-digest chaining)
    for (int i = 0; i < 32; i++) {{
        msg[i] = out[i];
    }}
    sha256_run(32);

    for (int i = 0; i < 8; i++) {{
        print_int(H[i]);
        print_char('\\n');
    }}
    return 0;
}}
"""

WORKLOAD = Workload(
    name="sha",
    mibench_counterpart="security/sha",
    description="SHA-256 in MiniC over a PRNG message, digest chained",
    source=_SOURCE,
    expected_stdout=_reference(),
)
