"""qsort — MiBench `automotive/qsort_small` counterpart.

Recursive quicksort (Lomuto partition) over a pseudorandom array,
followed by a sortedness check and a position-weighted checksum.
"""

from __future__ import annotations

from repro.workloads.base import MINIC_RNG, MiniRng, Workload

_SEED = 424242
_N = 110
_PRIME = 1000003


def _reference() -> str:
    rng = MiniRng(_SEED)
    data = [rng.next() % 100000 for _ in range(_N)]
    data.sort()
    sorted_ok = 1
    checksum = 0
    for i, value in enumerate(data):
        checksum = (checksum + (i + 1) * value) % _PRIME
    return f"{sorted_ok}\n{checksum}\n"


_SOURCE = f"""
{MINIC_RNG}

int data[{_N}];

void quicksort(int lo, int hi) {{
    if (lo >= hi) {{ return; }}
    int pivot = data[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j++) {{
        if (data[j] <= pivot) {{
            i++;
            int t = data[i];
            data[i] = data[j];
            data[j] = t;
        }}
    }}
    int t = data[i + 1];
    data[i + 1] = data[hi];
    data[hi] = t;
    quicksort(lo, i);
    quicksort(i + 2, hi);
}}

int main() {{
    rng_state = {_SEED};
    for (int i = 0; i < {_N}; i++) {{
        data[i] = rng_next() % 100000;
    }}
    quicksort(0, {_N} - 1);

    int sorted_ok = 1;
    for (int i = 1; i < {_N}; i++) {{
        if (data[i - 1] > data[i]) {{ sorted_ok = 0; }}
    }}
    print_int(sorted_ok);
    print_char('\\n');

    int checksum = 0;
    for (int i = 0; i < {_N}; i++) {{
        checksum = (checksum + (i + 1) * data[i]) % {_PRIME};
    }}
    print_int(checksum);
    print_char('\\n');
    return 0;
}}
"""

WORKLOAD = Workload(
    name="qsort",
    mibench_counterpart="automotive/qsort_small",
    description="recursive quicksort + checksum over a PRNG array",
    source=_SOURCE,
    expected_stdout=_reference(),
)
