"""Distributed tracing for the serve stack.

A *trace* is one request's trip through every layer — daemon request →
scheduler fleet → farm batch/sweep → job — stitched together by span
IDs and parent links.  Spans cross process boundaries as small wire
dicts (:meth:`TraceContext.to_wire`): the farm puts one into each
``ProcessPoolExecutor`` job payload, and the coordinator writes one
into every ``shard.json``, so a worker subprocess (or a remote ``eric
worker``) parents its spans under the dispatching run.

Persistence follows the :class:`~repro.farm.store.ResultStore`
discipline exactly: append-only JSONL, one single-``write`` line per
event, last record per span ID wins, corrupt/torn lines are skipped
and counted, never fatal.  Every span is written twice — once at start
(``end_s`` null) and once at finish — so a crash leaves *unfinished*
spans behind as forensic evidence ``eric doctor --trace`` can report.
Merging shard trace files is plain line concatenation
(:func:`merge_trace_files`), the same property the store's
``merge_from`` exploits.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import format_duration

TRACE_FILENAME = "trace.jsonl"
TRACE_SCHEMA = 1


@dataclass(frozen=True)
class TraceContext:
    """The (trace, span) coordinates a child span parents under —
    the only thing that crosses a process boundary."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data) -> "TraceContext | None":
        """Revive a wire dict; None for anything malformed (a shard
        spec hand-edited without trace context must not fail)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not (isinstance(trace_id, str) and trace_id
                and isinstance(span_id, str) and span_id):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class Span:
    """One live (in-progress) span; created by :meth:`Tracer.start`."""

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "start_s", "end_s", "ok", "detail", "attrs")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: str | None,
                 attrs: dict | None) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = time.time()
        self.end_s: float | None = None
        self.ok = True
        self.detail = ""
        self.attrs: dict = dict(attrs) if attrs else {}

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "ok": self.ok,
            "detail": self.detail,
            "attrs": self.attrs,
        }

    def finish(self, ok: bool = True, detail: str = "") -> None:
        """Close the span and persist its final record (idempotent —
        a second finish is a no-op, not a duplicate line)."""
        if self.end_s is not None:
            return
        self.end_s = time.time()
        self.ok = ok
        if detail:
            self.detail = detail
        self._tracer._record(self)


class Tracer:
    """Creates spans and persists them to ``<root>/trace.jsonl``.

    ``root=None`` keeps finished spans in memory only (:attr:`spans`)
    — tests and ad-hoc use.  File appends are one locked ``write`` per
    line, so concurrent threads *and* concurrent processes appending
    to the same file interleave whole lines, never fragments (the
    journal's contract).
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.path: Path | None = None
        if root is not None:
            root = Path(root)
            root.mkdir(parents=True, exist_ok=True)
            self.path = root / TRACE_FILENAME
        self._lock = threading.Lock()
        #: finished-span dicts observed by this tracer instance
        self.spans: list[dict] = []

    def start(self, name: str,
              parent: "TraceContext | Span | None" = None,
              attrs: dict | None = None) -> Span:
        """Open a span; a None parent starts a new trace (root span).
        The start record is written immediately so a crash mid-span
        still leaves evidence on disk."""
        if isinstance(parent, Span):
            parent = parent.context
        trace_id = parent.trace_id if parent else uuid.uuid4().hex
        span = Span(self, name, trace_id=trace_id,
                    span_id=uuid.uuid4().hex[:16],
                    parent_id=parent.span_id if parent else None,
                    attrs=attrs)
        self._write(span.to_dict())
        return span

    @contextmanager
    def span(self, name: str,
             parent: "TraceContext | Span | None" = None,
             attrs: dict | None = None):
        """Context-managed span: finishes ok on exit, failed (with the
        exception as detail) when the body raises."""
        span = self.start(name, parent=parent, attrs=attrs)
        try:
            yield span
        except BaseException as exc:
            span.finish(ok=False,
                        detail=f"{type(exc).__name__}: {exc}")
            raise
        else:
            span.finish()

    # -- persistence -------------------------------------------------------

    def _record(self, span: Span) -> None:
        data = span.to_dict()
        with self._lock:
            self.spans.append(data)
        self._write(data)

    def _write(self, data: dict) -> None:
        if self.path is None:
            return
        line = json.dumps(data, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)


# ----------------------------------------------------------------------
# reading, reconstruction, rendering


@dataclass(frozen=True)
class SpanRecord:
    """One span as read back from ``trace.jsonl`` (last record wins)."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_s: float
    end_s: float | None
    ok: bool
    detail: str
    attrs: dict

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.finished else 0.0

    @classmethod
    def from_dict(cls, data) -> "SpanRecord | None":
        """Revive one parsed line; None for corrupt or
        schema-mismatched records (callers skip and count them)."""
        if not isinstance(data, dict) or data.get("schema") != TRACE_SCHEMA:
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        name = data.get("name")
        start_s = data.get("start_s")
        if not (isinstance(trace_id, str) and isinstance(span_id, str)
                and isinstance(name, str)
                and isinstance(start_s, (int, float))):
            return None
        parent_id = data.get("parent_id")
        if parent_id is not None and not isinstance(parent_id, str):
            return None
        end_s = data.get("end_s")
        if end_s is not None and not isinstance(end_s, (int, float)):
            return None
        attrs = data.get("attrs")
        return cls(trace_id=trace_id, span_id=span_id,
                   parent_id=parent_id, name=name, start_s=start_s,
                   end_s=end_s, ok=bool(data.get("ok", True)),
                   detail=str(data.get("detail", "")),
                   attrs=attrs if isinstance(attrs, dict) else {})


def read_trace(path: str | Path) -> tuple[dict[str, SpanRecord], int]:
    """Load a trace file: last record per span ID wins; corrupt or
    torn lines are counted, never fatal.  Returns ``(spans_by_id,
    skipped_lines)``; a missing file reads as empty."""
    path = Path(path)
    if path.is_dir():
        path = path / TRACE_FILENAME
    spans: dict[str, SpanRecord] = {}
    skipped = 0
    if not path.exists():
        return spans, skipped
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            skipped += 1
            continue
        record = SpanRecord.from_dict(data)
        if record is None:
            skipped += 1
        else:
            spans[record.span_id] = record
    return spans, skipped


def merge_trace_files(dest: str | Path,
                      sources: Iterable[str | Path]) -> int:
    """Append every valid span line of ``sources`` onto ``dest`` —
    concatenation *is* the merge, exactly as for store JSONL (last
    record per span ID wins at read time).  Returns lines appended;
    corrupt source lines are silently left behind."""
    dest = Path(dest)
    if dest.is_dir():
        dest = dest / TRACE_FILENAME
    appended = 0
    dest.parent.mkdir(parents=True, exist_ok=True)
    with dest.open("a", encoding="utf-8") as out:
        for source in sources:
            spans, _ = read_trace(source)
            for record in spans.values():
                out.write(json.dumps(
                    {"schema": TRACE_SCHEMA, **record.__dict__},
                    sort_keys=True, separators=(",", ":")) + "\n")
                appended += 1
    return appended


@dataclass(frozen=True)
class TraceTree:
    """All spans of one trace ID, reconstructed into a tree."""

    trace_id: str
    spans: tuple[SpanRecord, ...]

    def by_id(self) -> dict[str, SpanRecord]:
        return {span.span_id: span for span in self.spans}

    @property
    def roots(self) -> tuple[SpanRecord, ...]:
        return tuple(sorted((s for s in self.spans
                             if s.parent_id is None),
                            key=lambda s: s.start_s))

    @property
    def orphans(self) -> tuple[SpanRecord, ...]:
        """Spans whose parent is named but missing — the signature of
        a lost process boundary (or an unmerged shard trace file)."""
        known = self.by_id()
        return tuple(s for s in self.spans
                     if s.parent_id is not None
                     and s.parent_id not in known)

    @property
    def connected(self) -> bool:
        """One root, and every other span reachable from it."""
        return len(self.roots) == 1 and not self.orphans

    def children(self, span_id: str) -> tuple[SpanRecord, ...]:
        return tuple(sorted((s for s in self.spans
                             if s.parent_id == span_id),
                            key=lambda s: s.start_s))

    @property
    def start_s(self) -> float:
        return min(s.start_s for s in self.spans)

    @property
    def end_s(self) -> float:
        return max((s.end_s if s.end_s is not None else s.start_s)
                   for s in self.spans)

    def critical_path(self) -> tuple[SpanRecord, ...]:
        """Root-to-leaf chain that determined the trace's wall clock:
        from each span, descend into the child that finished last."""
        roots = self.roots
        if not roots:
            return ()
        path = [max(roots, key=lambda s: s.end_s or s.start_s)]
        while True:
            children = self.children(path[-1].span_id)
            if not children:
                return tuple(path)
            path.append(max(children,
                            key=lambda s: s.end_s or s.start_s))

    def render(self) -> str:
        """Waterfall: depth-indented spans with offsets from the trace
        start, plus the critical path."""
        origin = self.start_s
        lines = [f"trace {self.trace_id[:16]}: {len(self.spans)} "
                 f"span(s), {format_duration(self.end_s - origin)}"]

        def emit(span: SpanRecord, depth: int) -> None:
            offset = f"+{format_duration(span.start_s - origin)}"
            duration = (format_duration(span.duration_s)
                        if span.finished else "UNFINISHED")
            flag = "" if span.ok else " [FAILED]"
            subject = f" {span.attrs['program']}" \
                if "program" in span.attrs else ""
            lines.append(f"  {offset:>12}  {'  ' * depth}"
                         f"{span.name}{subject}  ({duration}){flag}")
            for child in self.children(span.span_id):
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        for orphan in self.orphans:
            lines.append(f"  {'(orphan)':>12}  {orphan.name}  "
                         f"(parent {orphan.parent_id[:8]} missing)")
        path = self.critical_path()
        if path:
            chain = " -> ".join(span.name for span in path)
            lines.append(f"  critical path: {chain} "
                         f"({format_duration(self.end_s - origin)})")
        return "\n".join(lines)


def build_trees(spans: Iterable[SpanRecord]) -> tuple[TraceTree, ...]:
    """Group spans by trace ID; trees sorted by their earliest start."""
    grouped: dict[str, list[SpanRecord]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    trees = [TraceTree(trace_id=trace_id, spans=tuple(group))
             for trace_id, group in grouped.items()]
    return tuple(sorted(trees, key=lambda t: t.start_s))


def render_traces(path: str | Path,
                  trace_id: str | None = None) -> str:
    """The ``eric trace DIR`` report: every trace's waterfall (or just
    ``trace_id``'s, prefix-matched), newest last."""
    spans, skipped = read_trace(path)
    trees = build_trees(spans.values())
    if trace_id is not None:
        trees = tuple(t for t in trees
                      if t.trace_id.startswith(trace_id))
    if not trees:
        return ("no matching trace found"
                if trace_id is not None else "no traces recorded")
    blocks = [tree.render() for tree in trees]
    if skipped:
        blocks.append(f"({skipped} corrupt line(s) skipped)")
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# doctor


@dataclass(frozen=True)
class TraceDiagnosis:
    """Crash forensics over a trace directory (and its metrics file).

    Unfinished root spans are requests that never completed — a daemon
    killed mid-serve; dangling parents mean a process boundary lost
    its context (or a shard trace file was never merged back).
    """

    path: str
    exists: bool
    spans: int
    traces: int
    skipped_lines: int
    orphan_spans: int
    unfinished_spans: int
    unfinished_roots: int
    #: None: no metrics.json next to the trace file; True/False: it
    #: parsed / was corrupt
    metrics_ok: bool | None
    metrics_error: str = ""

    @property
    def healthy(self) -> bool:
        return (self.orphan_spans == 0 and self.unfinished_roots == 0
                and self.metrics_ok is not False)

    def describe(self) -> str:
        lines = [f"trace: {self.path}"]
        if not self.exists:
            lines.append("  no trace file (nothing recorded)")
        else:
            lines.append(f"  {self.spans} span(s) across "
                         f"{self.traces} trace(s)")
            if self.skipped_lines:
                lines.append(f"  {self.skipped_lines} corrupt "
                             f"line(s) skipped (torn tail tolerated)")
            if self.orphan_spans:
                lines.append(f"  {self.orphan_spans} orphan span(s) "
                             f"with a missing parent — was a shard "
                             f"trace file merged back?")
            if self.unfinished_roots:
                lines.append(f"  {self.unfinished_roots} unfinished "
                             f"root span(s) — a request died "
                             f"mid-serve")
            elif self.unfinished_spans:
                lines.append(f"  {self.unfinished_spans} unfinished "
                             f"non-root span(s)")
        if self.metrics_ok is True:
            lines.append("  metrics.json: ok")
        elif self.metrics_ok is False:
            lines.append(f"  metrics.json: CORRUPT "
                         f"({self.metrics_error})")
        lines.append("  verdict: healthy" if self.healthy
                     else "  verdict: NEEDS ATTENTION")
        return "\n".join(lines)


def diagnose_trace(root: str | Path) -> TraceDiagnosis:
    """Inspect ``<root>/trace.jsonl`` (and ``metrics.json`` when
    present) without mutating anything."""
    from repro.obs.metrics import METRICS_FILENAME, load_metrics

    root = Path(root)
    path = root / TRACE_FILENAME if root.is_dir() or not root.exists() \
        else root
    spans, skipped = read_trace(path)
    trees = build_trees(spans.values())
    orphans = sum(len(t.orphans) for t in trees)
    unfinished = sum(1 for s in spans.values() if not s.finished)
    unfinished_roots = sum(
        1 for t in trees for s in t.roots if not s.finished)
    metrics_ok: bool | None = None
    metrics_error = ""
    metrics_path = path.parent / METRICS_FILENAME
    if metrics_path.exists():
        try:
            load_metrics(metrics_path)
            metrics_ok = True
        except ValueError as exc:
            metrics_ok = False
            metrics_error = str(exc)
    return TraceDiagnosis(
        path=str(path), exists=path.exists(), spans=len(spans),
        traces=len(trees), skipped_lines=skipped, orphan_spans=orphans,
        unfinished_spans=unfinished, unfinished_roots=unfinished_roots,
        metrics_ok=metrics_ok, metrics_error=metrics_error)
