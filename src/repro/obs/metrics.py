"""Process-wide metrics: counters, gauges, quantile histograms.

One :data:`METRICS` registry per process, fed directly by the stack's
hot paths (the artifact cache, the single-flight coalescer, the farm's
result-collection loop, daemon admission) — instrumentation must never
add a lock-ordering or failure dependency, so every operation is a
single short critical section and never raises on bad input.

Snapshots persist as ``metrics.json`` next to the store or journal they
describe (atomic temp-file + ``os.replace``, like every other on-disk
artifact here), and ``eric metrics DIR`` renders them Prometheus-style.
Counters increment monotonically for the life of the process: a CLI
invocation's dump therefore describes exactly that run.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
from collections import deque
from pathlib import Path

METRICS_FILENAME = "metrics.json"
METRICS_SCHEMA = 1

#: Reported histogram quantiles (nearest-rank over the window).
QUANTILES = (0.5, 0.95, 0.99)

#: Observations kept per histogram — quantiles describe the most recent
#: window, bounding memory for arbitrarily long daemon runs.
HISTOGRAM_WINDOW = 4096


def format_duration(seconds: float) -> str:
    """Adaptive duration rendering: milliseconds under 10 s (the
    resolution every per-job line wants), whole seconds above (an
    hour-long sweep as ``3600123.0 ms`` is unreadable)."""
    if seconds < 10.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.1f} s"


class _Histogram:
    __slots__ = ("count", "total", "window")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.window: deque[float] = deque(maxlen=HISTOGRAM_WINDOW)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.window.append(value)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained window."""
        ordered = sorted(self.window)
        if not ordered:
            return 0.0
        rank = max(math.ceil(q * len(ordered)), 1)
        return ordered[rank - 1]

    def snapshot(self) -> dict:
        data = {"count": self.count, "sum": self.total}
        for q in QUANTILES:
            data[f"p{int(q * 100)}"] = self.quantile(q)
        return data


class MetricsRegistry:
    """Thread-safe counters, gauges, and histograms, keyed by dotted
    names (``store.hits``, ``telemetry.sink_errors``, …)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, by: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(value)

    # -- reads -------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def snapshot(self) -> dict:
        """JSON-safe view of everything observed so far."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.snapshot()
                               for name, h in self._histograms.items()},
            }

    def reset(self) -> None:
        """Forget everything (tests; never called by serving code)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- persistence -------------------------------------------------------

    def dump(self, root: str | Path) -> Path:
        """Atomically write the snapshot as ``<root>/metrics.json``."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        path = root / METRICS_FILENAME
        text = json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"
        handle, tmp_name = tempfile.mkstemp(
            dir=root, prefix=METRICS_FILENAME + ".", suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(text)
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def render(self) -> str:
        return render_snapshot(self.snapshot())


#: The process-wide registry every emit site feeds.
METRICS = MetricsRegistry()


def load_metrics(path: str | Path) -> dict:
    """Read a dumped snapshot; ``path`` is a ``metrics.json`` file or a
    directory holding one.  Raises ``ValueError`` on a missing or
    unparsable file (the doctor and ``eric metrics`` surface it)."""
    path = Path(path)
    if path.is_dir():
        path = path / METRICS_FILENAME
    if not path.exists():
        raise ValueError(f"no metrics snapshot at {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"metrics snapshot {path} is corrupt: "
                         f"{exc}") from None
    if not isinstance(data, dict) or data.get("schema") != METRICS_SCHEMA:
        raise ValueError(f"metrics snapshot {path} has unsupported "
                         f"schema {data.get('schema')!r}"
                         if isinstance(data, dict) else
                         f"metrics snapshot {path} is not a JSON object")
    return data


def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return f"eric_{cleaned}"


def _prom_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def render_snapshot(snapshot: dict) -> str:
    """Prometheus-style text exposition of a snapshot."""
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} "
                     f"{_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q in QUANTILES:
            key = f"p{int(q * 100)}"
            lines.append(f'{prom}{{quantile="{q}"}} '
                         f"{repr(float(data.get(key, 0.0)))}")
        lines.append(f"{prom}_sum {repr(float(data.get('sum', 0.0)))}")
        lines.append(f"{prom}_count {int(data.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")
