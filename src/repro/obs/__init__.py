"""repro.obs — observability: tracing, metrics, simulator profiling.

Three cooperating layers over the stack's existing telemetry hub:

* :mod:`repro.obs.trace` — ``Span``/``Tracer`` with trace/span IDs and
  parent links, propagated across every boundary of a serve (daemon
  request → scheduler fleet → farm batch → job), *including* process
  boundaries: trace context rides into ``ProcessPoolExecutor`` job
  payloads and ``shard.json`` worker specs.  Spans persist as
  append-only ``trace.jsonl`` with the same last-wins/torn-tail
  discipline as :class:`~repro.farm.store.ResultStore`; ``eric trace
  DIR`` renders per-request waterfalls and critical paths.

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, histograms with p50/p95/p99) fed by the existing
  emit sites: cache hits/misses, single-flight coalesces, admission
  defer/reject, store hits vs simulations, journal states.  ``eric
  metrics DIR`` renders a Prometheus-style text snapshot; the daemon
  poll loop dumps one periodically.

* simulator profiling — cheap counters threaded through the SoC run
  loop and :class:`~repro.farm.store.FarmRecord` (instructions retired,
  simulated cycles, wall seconds, derived sim-cycles/sec and cache hit
  rates per job), surfaced in ``FarmReport`` tables and committed as
  ``BENCH_interp.json`` so interpreter rework has a baseline.
"""

from repro.obs.metrics import (METRICS, METRICS_FILENAME, MetricsRegistry,
                               format_duration, load_metrics,
                               render_snapshot)
from repro.obs.trace import (TRACE_FILENAME, TRACE_SCHEMA, Span,
                             SpanRecord, TraceContext, TraceDiagnosis,
                             Tracer, TraceTree, build_trees,
                             diagnose_trace, merge_trace_files,
                             read_trace, render_traces)

__all__ = [
    "METRICS",
    "METRICS_FILENAME",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "TRACE_FILENAME",
    "TRACE_SCHEMA",
    "TraceContext",
    "TraceDiagnosis",
    "TraceTree",
    "Tracer",
    "build_trees",
    "diagnose_trace",
    "format_duration",
    "load_metrics",
    "merge_trace_files",
    "read_trace",
    "render_snapshot",
    "render_traces",
]
