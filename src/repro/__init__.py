"""repro — a Python reproduction of ERIC (DSN 2022).

*ERIC: An Efficient and Practical Software Obfuscation Framework* encrypts
program binaries under keys derived from a target device's physical
unclonable function (PUF), so that only that device can decrypt,
integrity-check and execute them — defeating both static and dynamic
analysis by anyone else.

Quickstart — one device::

    from repro import Device, deploy

    device = Device(device_seed=42)
    result = deploy("int main() { print_str(\\"hi\\"); return 0; }", device)
    print(result.stdout, result.total_cycles)

Quickstart — a fleet (compile once, encrypt per device)::

    from repro import Device, DeploymentSession

    session = DeploymentSession()
    fleet = [Device(device_seed=s) for s in range(100, 110)]
    report = session.deploy_fleet(SOURCE, fleet, max_workers=8)
    print(report.summary())          # per-device outcomes + stage costs
    print(session.cache_stats)       # proves the single compile

``deploy`` is a convenience wrapper over a throwaway
:class:`DeploymentSession`; hold a session whenever you deploy more than
once and the artifact cache makes repeat compiles free.

Package map (see DESIGN.md for the full inventory):

=====================  ====================================================
``repro.core``         ERIC itself: keys, encryptor, package, HDE, device;
                       the compiler split into a device-independent
                       ``prepare`` and per-device ``package_artifact``
``repro.service``      fleet-scale deployment: ``DeploymentSession``,
                       artifact cache, fleet reports, telemetry hooks
``repro.farm``         matrix-scale evaluation: content-addressed job
                       matrices, a resumable result store, and a
                       process-pool simulation farm (``eric sweep``)
``repro.crypto``       SHA-256, HMAC/KDF, XOR ciphers, AES (from scratch)
``repro.puf``          arbiter-PUF model, key generator, metrics
``repro.isa``          RV64IM + RVC encode/decode/disassemble
``repro.asm``          assembler and program images
``repro.cc``           MiniC optimizing compiler (the LLVM stand-in)
``repro.soc``          Rocket-like SoC simulator (caches, timing model)
``repro.hw``           structural LUT/FF area model (Table II)
``repro.net``          untrusted channel + static/dynamic attackers
``repro.workloads``    MiBench-counterpart benchmark programs
``repro.eval``         regenerates every table and figure of the paper
=====================  ====================================================
"""

from repro.core.config import EncryptionMode, EricConfig
from repro.core.compiler_driver import (CompiledArtifact, EricCompiler,
                                        EricCompileResult)
from repro.core.device import Device, DeviceRunResult
from repro.core.provisioning import DeviceRegistry
from repro.core.workflow import DeploymentResult, deploy
from repro.errors import (
    EricError,
    PackageFormatError,
    ValidationError,
)
from repro.farm import (
    FarmRecord,
    FarmReport,
    JobMatrix,
    JobSpec,
    ResultStore,
    SimParams,
    SimulationFarm,
)
from repro.service import (
    ArtifactCache,
    CacheStats,
    DeploymentSession,
    FleetDeploymentReport,
    FleetDeviceOutcome,
    RecordingTelemetry,
    TelemetryEvent,
)

__version__ = "1.2.0"

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CompiledArtifact",
    "DeploymentSession",
    "FarmRecord",
    "FarmReport",
    "JobMatrix",
    "JobSpec",
    "ResultStore",
    "SimParams",
    "SimulationFarm",
    "EncryptionMode",
    "EricConfig",
    "EricCompiler",
    "EricCompileResult",
    "Device",
    "DeviceRunResult",
    "DeviceRegistry",
    "DeploymentResult",
    "FleetDeploymentReport",
    "FleetDeviceOutcome",
    "RecordingTelemetry",
    "TelemetryEvent",
    "deploy",
    "EricError",
    "PackageFormatError",
    "ValidationError",
    "__version__",
]
