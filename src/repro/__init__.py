"""repro — a Python reproduction of ERIC (DSN 2022).

*ERIC: An Efficient and Practical Software Obfuscation Framework* encrypts
program binaries under keys derived from a target device's physical
unclonable function (PUF), so that only that device can decrypt,
integrity-check and execute them — defeating both static and dynamic
analysis by anyone else.

Quickstart::

    from repro import Device, EricCompiler, EricConfig, deploy

    device = Device(device_seed=42)
    result = deploy("int main() { print_str(\\"hi\\"); return 0; }", device)
    print(result.stdout, result.total_cycles)

Package map (see DESIGN.md for the full inventory):

=====================  ====================================================
``repro.core``         ERIC itself: keys, encryptor, package, HDE, device
``repro.crypto``       SHA-256, HMAC/KDF, XOR ciphers, AES (from scratch)
``repro.puf``          arbiter-PUF model, key generator, metrics
``repro.isa``          RV64IM + RVC encode/decode/disassemble
``repro.asm``          assembler and program images
``repro.cc``           MiniC optimizing compiler (the LLVM stand-in)
``repro.soc``          Rocket-like SoC simulator (caches, timing model)
``repro.hw``           structural LUT/FF area model (Table II)
``repro.net``          untrusted channel + static/dynamic attackers
``repro.workloads``    MiBench-counterpart benchmark programs
``repro.eval``         regenerates every table and figure of the paper
=====================  ====================================================
"""

from repro.core.config import EncryptionMode, EricConfig
from repro.core.compiler_driver import EricCompiler, EricCompileResult
from repro.core.device import Device, DeviceRunResult
from repro.core.provisioning import DeviceRegistry
from repro.core.workflow import DeploymentResult, deploy
from repro.errors import (
    EricError,
    PackageFormatError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "EncryptionMode",
    "EricConfig",
    "EricCompiler",
    "EricCompileResult",
    "Device",
    "DeviceRunResult",
    "DeviceRegistry",
    "DeploymentResult",
    "deploy",
    "EricError",
    "PackageFormatError",
    "ValidationError",
    "__version__",
]
