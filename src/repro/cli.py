"""``eric`` — command-line front end (the paper's GUI, headless).

Subcommands::

    eric describe --config cfg.json       show an encryption configuration
    eric package  prog.c -o prog.eric     compile+sign+encrypt a program
    eric fleet    prog.c --devices 10     compile once, deploy to a fleet
    eric fleet    prog.c --async          same rollout, asyncio fan-out
    eric run      prog.eric               decrypt+validate+run on a device
    eric inspect  prog.eric               parse a package header
    eric disasm   prog.c                  compile and disassemble (plain)
    eric eval     [fig7 ...] --jobs 4     regenerate paper tables/figures
    eric sweep    matrix.json --jobs 4    run a simulation-farm matrix
    eric sweep    matrix.json --shards 4  shard it over coordinated workers
    eric frontier matrix.json             security-vs-overhead per policy
    eric worker   shard.json --store DIR  run one shard (e.g. remotely)
    eric serve    --fleets fleets.json    schedule many fleets over one farm
    eric daemon   --journal DIR           durable serve loop (submit/resume)
    eric submit   spec.json --journal DIR journal fleet requests for a daemon
    eric status   --journal DIR           journal state, no daemon needed
    eric doctor   --store DIR             store health report, no sweep
    eric doctor   --journal DIR           ... plus request-journal health
    eric doctor   --store DIR --fingerprint  ... plus model-drift audit
    eric lint     [--rule NAME] [paths]   project AST lint rules
    eric fingerprint [--explain]          timing-model fingerprint
    eric docs-cli                         regenerate docs/cli.md content

Device identity is simulated: ``--device-seed`` selects the die.  The
same seed on ``package`` and ``run`` is the happy path; different seeds
demonstrate the two-way authentication failure.  ``fleet`` takes either
``--devices N`` (seeds ``--seed-base .. --seed-base+N-1``) or an
explicit ``--device-seeds 0x10,0x11,...`` list.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.device import Device
from repro.core.interface import config_from_dict, describe
from repro.core.package import ProgramPackage
from repro.errors import EricError
from repro.service.session import DeploymentSession


def _load_json(path: str, what: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except json.JSONDecodeError as exc:
            raise EricError(f"{what} {path!r} is not valid JSON: "
                            f"{exc}") from None


def _load_config(path: str | None):
    if path is None:
        return config_from_dict({})
    return config_from_dict(_load_json(path, "config file"))


def _cmd_describe(args: argparse.Namespace) -> int:
    print(describe(_load_config(args.config)))
    return 0


def _cmd_package(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    config = _load_config(args.config)
    device = Device(device_seed=args.device_seed)
    # package_for goes through the session's DeviceRegistry, so the CLI
    # exercises the same step-① enrollment path as deploy().
    session = DeploymentSession(config)
    result = session.package_for(source, device, name=args.source)
    with open(args.output, "wb") as handle:
        handle.write(result.package_bytes)
    t = result.timings
    print(f"packaged {args.source} -> {args.output}")
    print(f"  plain size   : {result.plain_size} B")
    print(f"  package size : {result.package_size} B "
          f"({100 * result.size_increase_fraction:+.2f}%)")
    print(f"  stages       : compile {t.compile_s * 1e3:.1f} ms, "
          f"sign {t.signature_s * 1e3:.1f} ms, "
          f"encrypt {t.encryption_s * 1e3:.1f} ms")
    return 0


def _fleet_seeds(args: argparse.Namespace) -> list[int]:
    if args.device_seeds is not None:
        try:
            return [int(s, 0) for s in args.device_seeds.split(",")
                    if s.strip()]
        except ValueError:
            raise EricError(
                f"bad --device-seeds {args.device_seeds!r}: expected "
                "comma-separated integers (0x... allowed)") from None
    return [args.seed_base + i for i in range(args.devices)]


def _cmd_fleet(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    seeds = _fleet_seeds(args)
    # empty fleet / bad max_workers raise EricError in deploy_fleet,
    # which main() renders as a clean "eric: error:" line
    session = DeploymentSession(_load_config(args.config))
    devices = [Device(device_seed=seed) for seed in seeds]
    if args.use_async:
        import asyncio

        from repro.service.scheduler import AsyncDeploymentSession

        async_session = AsyncDeploymentSession(
            session, max_concurrency=args.max_workers)

        async def _deploy():
            try:
                return await async_session.deploy_fleet(
                    source, devices, name=args.source,
                    max_instructions=args.max_instructions)
            finally:
                await async_session.aclose()

        report = asyncio.run(_deploy())
    else:
        report = session.deploy_fleet(
            source, devices, max_workers=args.max_workers,
            name=args.source, max_instructions=args.max_instructions)
    print(report.summary())
    stats = session.cache_stats
    print(f"  compiles     : {stats.compiles} "
          f"(cache {stats.hits} hits / {stats.misses} misses)")
    for outcome in report.succeeded:
        print(f"  {outcome.device_id}: exit "
              f"{outcome.result.exit_code}, "
              f"{outcome.result.total_cycles} cycles")
    return 0 if report.all_ok else 1


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.package, "rb") as handle:
        blob = handle.read()
    device = Device(device_seed=args.device_seed)
    outcome = device.load_and_run(blob,
                                  max_instructions=args.max_instructions)
    sys.stdout.write(outcome.run.stdout)
    print(f"[exit {outcome.run.exit_code}; "
          f"hde {outcome.hde.total_cycles} + "
          f"run {outcome.run.counters.cycles} cycles]")
    return outcome.run.exit_code


def _cmd_inspect(args: argparse.Namespace) -> int:
    with open(args.package, "rb") as handle:
        package = ProgramPackage.deserialize(handle.read())
    print(f"mode          : {package.mode.value}")
    print(f"cipher        : {package.cipher}")
    if package.field_classes:
        print(f"field classes : {', '.join(package.field_classes)}")
    print(f"entry         : {package.entry:#x}")
    print(f"text          : {len(package.enc_text)} B at "
          f"{package.text_base:#x}")
    print(f"data          : {len(package.data)} B at "
          f"{package.data_base:#x} "
          f"({'signed' if package.data_signed else 'unsigned'})")
    print(f"instructions  : {package.enc_map.count} "
          f"({package.enc_map.encrypted_count} encrypted)")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.cc.driver import compile_source
    from repro.isa.disassembler import disassemble_text

    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = compile_source(source, name=args.source,
                             compress=args.compress).program
    for line in disassemble_text(program.text, program.text_base):
        print(line)
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.eval.__main__ import main as eval_main

    argv = list(args.experiments) + ["--jobs", str(args.jobs)]
    if args.store:
        argv += ["--store", args.store]
    if args.shards:
        argv += ["--shards", str(args.shards)]
    if args.force:
        argv.append("--force")
    return eval_main(argv)


def _warn_skipped_lines(store) -> None:
    """Surface corrupt/schema-mismatched store lines (silently skipped
    at load) so operators know the file carries dead weight."""
    warning = store.skipped_warning() if store is not None else None
    if warning:
        print(f"eric: warning: {warning}", file=sys.stderr)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.farm import (FarmCoordinator, JobMatrix, ResultStore,
                            SimulationFarm)
    from repro.obs import METRICS, Tracer
    from repro.service.telemetry import StagePrinter

    if args.compact and args.no_store:
        raise EricError("--compact rewrites the result store; "
                        "drop --no-store to use it")
    if args.shards and args.no_store:
        raise EricError("--shards merges shard stores into the main "
                        "store; drop --no-store to use it")
    if (args.trace or args.metrics) and args.no_store:
        raise EricError("--trace/--metrics persist next to the result "
                        "store; drop --no-store to use them")
    matrix = JobMatrix.from_spec(_load_json(args.spec, "sweep spec"))
    store = None if args.no_store else ResultStore(args.store)
    _warn_skipped_lines(store)
    tracer = Tracer(store.root) if args.trace else None
    if args.shards:
        farm = FarmCoordinator(store=store, shards=args.shards,
                               jobs_per_shard=args.jobs,
                               shard_root=args.shard_root,
                               tracer=tracer)
        if not args.quiet:
            # per-job events stay inside the worker processes; narrate
            # shard completions instead
            farm.on_event(StagePrinter(stages="farm.shard"))
    else:
        farm = SimulationFarm(store=store, jobs=args.jobs,
                              tracer=tracer)
        if not args.quiet:
            farm.on_event(StagePrinter(stages="farm.job"))
    report = farm.run(matrix, force=args.force)
    print(report.render())
    print(report.summary())
    print(report.profile_summary())
    if args.shards:
        for index, stats in enumerate(farm.last_merge):
            print(f"shard {index + 1}/{len(farm.last_merge)} merged: "
                  f"{stats.describe()}")
    if store is not None:
        if args.compact:
            print(f"store compacted: {store.compact()} live record(s)")
        print(f"store: {store.path} ({len(store)} records)")
    if tracer is not None:
        print(f"trace: {tracer.path}")
    if args.metrics:
        print(f"metrics: {METRICS.dump(store.root)}")
    return 0 if not report.failures else 1


def _cmd_frontier(args: argparse.Namespace) -> int:
    from repro.eval.frontier import frontier_report
    from repro.farm import JobMatrix, ResultStore, SimulationFarm
    from repro.service.telemetry import StagePrinter

    spec = _load_json(args.spec, "frontier spec")
    matrix = JobMatrix.from_spec(spec)
    # the frontier scores overhead *and* attacker resistance; a matrix
    # that skips either measurement cannot be scored, so fail before
    # spending any simulation time rather than after
    if not matrix.simulate or not matrix.analyze:
        raise EricError('frontier specs must set "simulate": true and '
                        '"analyze": true — the table scores both '
                        "overhead and attacker resistance")
    store = None if args.no_store else ResultStore(args.store)
    _warn_skipped_lines(store)
    farm = SimulationFarm(store=store, jobs=args.jobs)
    if not args.quiet:
        farm.on_event(StagePrinter(stages="farm.job"))
    report = farm.run(matrix, force=args.force)
    if report.failures:
        for failure in report.failures:
            print(f"  FAILED {failure.spec.display_name}: "
                  f"{failure.error}", file=sys.stderr)
        return 1
    print(frontier_report(report).render(stable=args.stable))
    print(report.summary())
    if store is not None:
        print(f"store: {store.path} ({len(store)} records)")
    return 0


def _cmd_docs_cli(args: argparse.Namespace) -> int:
    from repro.cli_docs import render_cli_docs

    text = render_cli_docs(build_parser())
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            committed = handle.read()
        if committed != text:
            print(f"eric: error: {args.check} is stale — regenerate "
                  f"with: eric docs-cli > {args.check}",
                  file=sys.stderr)
            return 1
        print(f"{args.check} is current")
        return 0
    print(text, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.farm import ResultStore
    from repro.obs import METRICS, Tracer
    from repro.service.scheduler import FleetScheduler, load_fleet_specs
    from repro.service.telemetry import StagePrinter

    if args.shards and args.no_store:
        raise EricError("--shards merges shard stores into the main "
                        "store; drop --no-store to use it")
    if (args.trace or args.metrics) and args.no_store:
        raise EricError("--trace/--metrics persist next to the result "
                        "store; drop --no-store to use them")
    requests = load_fleet_specs(_load_json(args.fleets, "fleets spec"))
    store = None if args.no_store else ResultStore(args.store)
    _warn_skipped_lines(store)
    tracer = Tracer(store.root) if args.trace else None
    scheduler = FleetScheduler(
        store=store, config=None, jobs=args.jobs, shards=args.shards,
        shard_root=args.shard_root, max_concurrency=args.max_concurrency,
        batch_window=args.batch_window, tracer=tracer)
    if not args.quiet:
        scheduler.on_event(StagePrinter(stages="scheduler."))
    report = scheduler.run(requests, force=args.force)
    for fleet in report.fleets:
        print(fleet.summary())
        # failed jobs exit nonzero below; name each one so the
        # operator does not have to re-run with telemetry on
        for failure in fleet.failures:
            print(f"  FAILED {fleet.name}/"
                  f"{failure.spec.display_name}: {failure.error}")
    print(report.summary())
    if store is not None:
        print(f"store: {store.path} ({len(store)} records)")
    if tracer is not None:
        print(f"trace: {tracer.path}")
    if args.metrics:
        print(f"metrics: {METRICS.dump(store.root)}")
    return 0 if report.all_ok else 1


def _cmd_daemon(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.farm import ResultStore
    from repro.service.daemon import (AdmissionPolicy, JournalStore,
                                      ServeDaemon, submit_fleets)
    from repro.service.telemetry import StagePrinter

    if args.shards and args.no_store:
        raise EricError("--shards merges shard stores into the main "
                        "store; drop --no-store to use it")
    from repro.obs import Tracer

    journal = JournalStore(args.journal)
    _warn_skipped_lines(journal)
    if args.fleets:
        records = submit_fleets(
            journal, _load_json(args.fleets, "fleets spec"),
            tenant=args.tenant, priority=args.priority)
        for record in records:
            print(f"submitted {record.request_id}: fleet "
                  f"{record.fleet_name!r} ({record.total_jobs} job(s))")
    store = None if args.no_store else ResultStore(args.store)
    _warn_skipped_lines(store)
    tracer = Tracer(journal.root) if args.trace else None
    daemon = ServeDaemon(
        journal, store=store,
        policy=AdmissionPolicy(
            max_pending_jobs=args.max_pending_jobs,
            tenant_quota=args.tenant_quota, overflow=args.overflow,
            retry_after_s=args.retry_after),
        jobs=args.jobs, shards=args.shards, shard_root=args.shard_root,
        max_active=args.max_active,
        checkpoint_every=args.checkpoint_every,
        poll_interval=args.poll_interval, tracer=tracer,
        metrics_interval=args.metrics_interval)
    if not args.quiet:
        daemon.on_event(StagePrinter(stages="daemon."))

    async def _run():
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum,
                                        daemon.request_shutdown)
            except (NotImplementedError, ValueError):
                # non-main thread or exotic loop: the sync handler
                # still only flips a flag, which is signal-safe
                signal.signal(signum,
                              lambda *_: daemon.request_shutdown())
        return await daemon.run(once=args.once)

    report = asyncio.run(_run())
    print(report.summary())
    print(f"journal: {journal.path} ({len(journal)} request(s))")
    if store is not None:
        print(f"store: {store.path} ({len(store)} records)")
    if tracer is not None:
        print(f"trace: {tracer.path}")
    return 0 if report.all_ok else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.daemon import JournalStore, submit_fleets

    journal = JournalStore(args.journal)
    _warn_skipped_lines(journal)
    records = submit_fleets(
        journal, _load_json(args.spec, "submission spec"),
        tenant=args.tenant, priority=args.priority)
    for record in records:
        print(f"submitted {record.request_id}: fleet "
              f"{record.fleet_name!r} ({record.total_jobs} job(s), "
              f"tenant {record.tenant}, priority {record.priority})")
    print(f"journal: {journal.path} ({len(journal)} request(s))")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.daemon import JournalStore, format_status

    journal = JournalStore(args.journal)
    if args.compact:
        print(f"journal compacted: {journal.compact()} request "
              f"line(s)")
    print(format_status(journal))
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.farm.doctor import diagnose_store

    diagnosis = diagnose_store(args.store, shard_root=args.shard_root)
    print(diagnosis.describe())
    healthy = diagnosis.healthy
    if args.fingerprint:
        from repro.farm.doctor import audit_fingerprints

        audit = audit_fingerprints(args.store)
        print(audit.describe())
        healthy = healthy and audit.healthy
    if args.journal:
        from repro.service.daemon import diagnose_journal

        journal_diagnosis = diagnose_journal(
            args.journal, stale_after_s=args.stale_after)
        print(journal_diagnosis.describe())
        healthy = healthy and journal_diagnosis.healthy
    if args.trace:
        from repro.obs import diagnose_trace

        trace_diagnosis = diagnose_trace(args.trace)
        print(trace_diagnosis.describe())
        healthy = healthy and trace_diagnosis.healthy
    return 0 if healthy else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.statics import all_rules, lint_paths

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        return 0
    try:
        findings = lint_paths(paths=args.paths or None, rule=args.rule)
    except ValueError as exc:  # unknown --rule name
        raise EricError(str(exc)) from None
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.statics import FingerprintReport, fingerprint_report

    report = fingerprint_report()
    if args.diff:
        try:
            old = FingerprintReport.from_dict(
                _load_json(args.diff, "fingerprint report"))
        except ValueError as exc:
            raise EricError(f"{args.diff}: {exc}") from None
        print(report.diff(old))
        return 0 if old.fingerprint == report.fingerprint else 1
    if args.json:
        print(report.to_json())
    elif args.explain:
        print(report.explain())
    else:
        print(report.fingerprint)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_traces

    print(render_traces(args.dir, trace_id=args.trace_id))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import load_metrics, render_snapshot

    try:
        snapshot = load_metrics(args.dir)
    except ValueError as exc:
        raise EricError(str(exc)) from None
    print(render_snapshot(snapshot), end="")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.farm.worker import main as worker_main

    argv = [args.shard, "--store", args.store, "--jobs", str(args.jobs)]
    if args.force:
        argv.append("--force")
    if args.quiet:
        argv.append("--quiet")
    return worker_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eric",
        description="ERIC software-obfuscation framework (reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="show an encryption configuration")
    p.add_argument("--config", help="JSON config file")
    p.set_defaults(func=_cmd_describe)

    p = sub.add_parser("package", help="compile+sign+encrypt a program")
    p.add_argument("source", help="MiniC source file")
    p.add_argument("-o", "--output", default="program.eric")
    p.add_argument("--config", help="JSON config file")
    p.add_argument("--device-seed", type=lambda s: int(s, 0),
                   default=0xC0FFEE)
    p.set_defaults(func=_cmd_package)

    p = sub.add_parser("fleet",
                       help="compile once, deploy to a whole fleet")
    p.add_argument("source", help="MiniC source file")
    p.add_argument("--config", help="JSON config file")
    p.add_argument("--devices", type=int, default=4,
                   help="fleet size (seeds seed-base..seed-base+N-1)")
    p.add_argument("--seed-base", type=lambda s: int(s, 0),
                   default=0xF1EE7)
    p.add_argument("--device-seeds",
                   help="explicit comma-separated seed list (overrides "
                        "--devices/--seed-base)")
    p.add_argument("--max-workers", type=int, default=4)
    p.add_argument("--max-instructions", type=int, default=20_000_000)
    p.add_argument("--async", dest="use_async", action="store_true",
                   help="fan out over asyncio coroutines instead of a "
                        "thread pool (same report, single-flight "
                        "compile)")
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("run", help="decrypt+validate+run a package")
    p.add_argument("package", help=".eric package file")
    p.add_argument("--device-seed", type=lambda s: int(s, 0),
                   default=0xC0FFEE)
    p.add_argument("--max-instructions", type=int, default=20_000_000)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("inspect", help="parse a package header")
    p.add_argument("package")
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("disasm", help="compile and disassemble (plain)")
    p.add_argument("source")
    p.add_argument("--compress", action="store_true")
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("eval", help="regenerate paper tables/figures")
    p.add_argument("experiments", nargs="*",
                   help="table1 table2 fig5 fig6 fig7 (default: all)")
    p.add_argument("--jobs", type=int, default=1,
                   help="simulation-farm worker processes (default 1)")
    p.add_argument("--store",
                   help="farm result store directory to resume from")
    p.add_argument("--shards", type=int, default=0,
                   help="shard farm matrices over N coordinated worker "
                        "processes (requires --store)")
    p.add_argument("--force", action="store_true",
                   help="re-measure even stored results")
    p.set_defaults(func=_cmd_eval)

    p = sub.add_parser(
        "sweep",
        help="run a workload x config x device matrix on the farm")
    p.add_argument("spec", help="JSON matrix spec (see repro.farm."
                                "JobMatrix.from_spec)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default 1); with --shards, "
                        "processes per shard")
    p.add_argument("--store", default="benchmarks/results/farm",
                   help="result-store directory "
                        "(default: benchmarks/results/farm)")
    p.add_argument("--shards", type=int, default=0,
                   help="shard the matrix's key space over N "
                        "coordinated workers, then merge their stores "
                        "(0 = unsharded)")
    p.add_argument("--shard-root",
                   help="per-shard store/spec directory "
                        "(default: <store>/shards)")
    p.add_argument("--no-store", action="store_true",
                   help="measure in-memory; skip and persist nothing")
    p.add_argument("--force", action="store_true",
                   help="re-measure (and re-persist) stored keys")
    p.add_argument("--compact", action="store_true",
                   help="after the sweep, rewrite the store with one "
                        "line per live key (drops superseded and "
                        "corrupt lines)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress lines")
    p.add_argument("--trace", action="store_true",
                   help="record a span per sweep/shard/job into "
                        "<store>/trace.jsonl (see eric trace)")
    p.add_argument("--metrics", action="store_true",
                   help="dump the run's metrics registry to "
                        "<store>/metrics.json (see eric metrics)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "frontier",
        help="sweep a policy matrix and render the security-vs-"
             "overhead frontier per policy")
    p.add_argument("spec",
                   help="JSON matrix spec with a policies axis; must "
                        'set "simulate": true and "analyze": true')
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default 1)")
    p.add_argument("--store", default="benchmarks/results/farm",
                   help="result-store directory "
                        "(default: benchmarks/results/farm)")
    p.add_argument("--no-store", action="store_true",
                   help="measure in-memory; skip and persist nothing")
    p.add_argument("--force", action="store_true",
                   help="re-measure (and re-persist) stored keys")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress lines")
    p.add_argument("--stable", action="store_true",
                   help="render with the stable-table contract (the "
                        "frontier is deterministic either way; this "
                        "asserts it)")
    p.set_defaults(func=_cmd_frontier)

    p = sub.add_parser(
        "serve",
        help="multiplex many fleet deployments over one farm/store pair")
    p.add_argument("--fleets", required=True,
                   help='JSON fleets spec: {"fleets": [{"name": ..., '
                        "<sweep matrix keys>}, ...]}")
    p.add_argument("--store", default="benchmarks/results/farm",
                   help="shared result-store directory "
                        "(default: benchmarks/results/farm)")
    p.add_argument("--jobs", type=int, default=1,
                   help="farm worker processes per batch (default 1); "
                        "with --shards, processes per shard")
    p.add_argument("--shards", type=int, default=0,
                   help="run batches through a sharded coordinator "
                        "(0 = unsharded)")
    p.add_argument("--shard-root",
                   help="per-shard store/spec directory "
                        "(default: <store>/shards)")
    p.add_argument("--max-concurrency", type=int, default=8,
                   help="bound on concurrently-running blocking stages "
                        "(default 8)")
    p.add_argument("--batch-window", type=float, default=0.02,
                   help="seconds the batcher lingers so overlapping "
                        "fleets coalesce into one farm batch "
                        "(default 0.02)")
    p.add_argument("--no-store", action="store_true",
                   help="measure in-memory; skip and persist nothing")
    p.add_argument("--force", action="store_true",
                   help="re-measure (and re-persist) stored keys")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-fleet/per-batch progress lines")
    p.add_argument("--trace", action="store_true",
                   help="record fleet/batch/farm/job spans into "
                        "<store>/trace.jsonl (see eric trace)")
    p.add_argument("--metrics", action="store_true",
                   help="dump the run's metrics registry to "
                        "<store>/metrics.json (see eric metrics)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "daemon",
        help="serve a durable journaled fleet queue (admission "
             "control, priorities, crash-safe resume)")
    p.add_argument("--journal", required=True,
                   help="request-journal directory (journal.jsonl)")
    p.add_argument("--fleets",
                   help="optional fleets spec to submit before serving "
                        "(same format as eric serve --fleets)")
    p.add_argument("--tenant", default="default",
                   help="tenant for --fleets submissions "
                        "(default: default)")
    p.add_argument("--priority", type=int, default=0,
                   help="priority for --fleets submissions; higher "
                        "dispatches first (default 0)")
    p.add_argument("--store", default="benchmarks/results/farm",
                   help="shared result-store directory "
                        "(default: benchmarks/results/farm)")
    p.add_argument("--no-store", action="store_true",
                   help="measure in-memory; resume loses progress")
    p.add_argument("--jobs", type=int, default=1,
                   help="farm worker processes per batch (default 1)")
    p.add_argument("--shards", type=int, default=0,
                   help="run batches through a sharded coordinator "
                        "(0 = unsharded)")
    p.add_argument("--shard-root",
                   help="per-shard store/spec directory "
                        "(default: <store>/shards)")
    p.add_argument("--max-active", type=int, default=4,
                   help="fleet requests served concurrently "
                        "(default 4)")
    p.add_argument("--max-pending-jobs", type=int, default=256,
                   help="admission watermark: pending-job bound across "
                        "admitted+running requests (default 256)")
    p.add_argument("--tenant-quota", type=int, default=8,
                   help="live requests allowed per tenant (default 8)")
    p.add_argument("--overflow", choices=("defer", "reject"),
                   default="defer",
                   help="watermark overflow: defer (leave submitted) "
                        "or reject with retry-after (default defer)")
    p.add_argument("--retry-after", type=float, default=30.0,
                   help="retry hint attached to rejections "
                        "(default 30s)")
    p.add_argument("--checkpoint-every", type=int, default=8,
                   help="jobs measured between journal checkpoints "
                        "(default 8); smaller = finer-grained resume")
    p.add_argument("--poll-interval", type=float, default=0.25,
                   help="idle seconds between journal polls "
                        "(default 0.25)")
    p.add_argument("--once", action="store_true",
                   help="drain the journal and exit instead of "
                        "serving forever")
    p.add_argument("--quiet", action="store_true",
                   help="suppress daemon progress lines")
    p.add_argument("--trace", action="store_true",
                   help="record one connected trace per served request "
                        "into <journal>/trace.jsonl (see eric trace)")
    p.add_argument("--metrics-interval", type=float, default=5.0,
                   help="seconds between metrics.json dumps into the "
                        "journal directory (default 5)")
    p.set_defaults(func=_cmd_daemon)

    p = sub.add_parser(
        "submit",
        help="journal fleet requests for a (possibly not yet running) "
             "daemon")
    p.add_argument("spec",
                   help="JSON spec: one fleet object or "
                        '{"fleets": [...]}')
    p.add_argument("--journal", required=True,
                   help="request-journal directory")
    p.add_argument("--tenant", default="default",
                   help="tenant the requests count against "
                        "(default: default)")
    p.add_argument("--priority", type=int, default=0,
                   help="higher dispatches first (default 0)")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "status",
        help="show journaled request states without running a daemon")
    p.add_argument("--journal", required=True,
                   help="request-journal directory")
    p.add_argument("--compact", action="store_true",
                   help="first rewrite the journal with one line per "
                        "request (drops superseded and corrupt lines)")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser(
        "doctor",
        help="report store health (schema drift, corrupt lines, shard "
             "leftovers) without running a sweep")
    p.add_argument("--store", default="benchmarks/results/farm",
                   help="result-store directory to inspect "
                        "(default: benchmarks/results/farm)")
    p.add_argument("--shard-root",
                   help="shard directory to scan for leftovers "
                        "(default: <store>/shards)")
    p.add_argument("--journal",
                   help="also diagnose a request journal (live/"
                        "terminal/corrupt counts, stuck-running "
                        "detection)")
    p.add_argument("--stale-after", type=float, default=600.0,
                   help="seconds before a running request with no "
                        "journal activity counts as stuck "
                        "(default 600)")
    p.add_argument("--trace",
                   help="also diagnose a trace directory (dangling "
                        "parents, unfinished root spans, corrupt "
                        "metrics.json)")
    p.add_argument("--fingerprint", action="store_true",
                   help="also audit live records against the current "
                        "timing-model fingerprint (drifted records "
                        "fail the doctor)")
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser(
        "lint",
        help="run the project lint rules (store determinism, schema "
             "pins, span hygiene, superblock codegen)")
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default: "
                        "src/ tests/ benchmarks/ examples/)")
    p.add_argument("--rule",
                   help="run only the named rule")
    p.add_argument("--list-rules", action="store_true",
                   help="list the shipped rules and exit")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "fingerprint",
        help="print the timing-model fingerprint job keys embed")
    p.add_argument("--explain", action="store_true",
                   help="also list per-module digest contributions")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON (the format "
                        "--diff consumes)")
    p.add_argument("--diff", metavar="OLD.json",
                   help="compare against a previously saved --json "
                        "report; exit 1 on drift")
    p.set_defaults(func=_cmd_fingerprint)

    p = sub.add_parser(
        "docs-cli",
        help="render docs/cli.md from the live argparse tree")
    p.add_argument("--check", metavar="DOCS.md",
                   help="diff against a committed page instead of "
                        "printing; exit 1 when it is stale")
    p.set_defaults(func=_cmd_docs_cli)

    p = sub.add_parser(
        "trace",
        help="render recorded traces as waterfalls with critical paths")
    p.add_argument("dir",
                   help="directory holding trace.jsonl (a store or "
                        "journal dir swept with --trace), or the file "
                        "itself")
    p.add_argument("--trace-id",
                   help="render only the trace whose ID starts with "
                        "this prefix")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="render a dumped metrics.json Prometheus-style")
    p.add_argument("dir",
                   help="directory holding metrics.json (or the file "
                        "itself)")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "worker",
        help="run one distributed-farm shard against a local store")
    p.add_argument("shard", help="shard spec JSON (written by "
                                 "eric sweep --shards)")
    p.add_argument("--store", required=True,
                   help="per-shard result-store directory")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes on this machine (default 1)")
    p.add_argument("--force", action="store_true",
                   help="re-measure (and re-persist) stored keys")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress lines")
    p.set_defaults(func=_cmd_worker)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except EricError as exc:
        print(f"eric: error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"eric: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
