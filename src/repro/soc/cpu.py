"""Functional RV64IM execution.

Registers hold Python ints in unsigned 64-bit form ``[0, 2**64)``.
``execute`` applies one decoded instruction and returns the next pc, or
``ECALL_SENTINEL`` when the instruction was an ``ecall`` (the SoC layer
owns the syscall ABI).

Semantics follow the unprivileged spec exactly, including the M-extension
corner cases (division by zero, signed-overflow division) — the MiniC
workloads rely on C-style truncating division, which is what RISC-V
defines.
"""

from __future__ import annotations

from repro.errors import SimulatorError
from repro.isa.instruction import Instruction
from repro.soc.memory import Memory

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63
_MIN64 = -(1 << 63)

#: Returned by ``execute`` for ecall; the SoC layer handles the syscall.
ECALL_SENTINEL = -1


def _signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN64 else value


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


def _sext32(value: int) -> int:
    value &= 0xFFFFFFFF
    if value & 0x80000000:
        value |= 0xFFFFFFFF00000000
    return value


def _div_trunc(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


class Cpu:
    """Architectural state + one-instruction executor."""

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self.regs = [0] * 32
        self.pc = 0

    def reset(self, entry: int, sp: int) -> None:
        self.regs = [0] * 32
        self.regs[2] = sp & _MASK64
        self.pc = entry

    # The handler table is built once per class; each handler mutates the
    # register file and returns the next pc (or ECALL_SENTINEL).

    def execute(self, instr: Instruction, pc: int, size: int) -> int:
        handler = _HANDLERS.get(instr.name)
        if handler is None:
            raise SimulatorError(f"no handler for {instr.name}")
        next_pc = handler(self, instr, pc, size)
        self.regs[0] = 0
        return next_pc


# --- handler implementations -------------------------------------------


def _h_lui(cpu, i, pc, size):
    value = i.imm << 12
    if value & 0x80000000:
        value |= 0xFFFFFFFF00000000
    cpu.regs[i.rd] = value
    return pc + size


def _h_auipc(cpu, i, pc, size):
    value = i.imm << 12
    if value & 0x80000000:
        value |= 0xFFFFFFFF00000000
    cpu.regs[i.rd] = (pc + value) & _MASK64
    return pc + size


def _h_jal(cpu, i, pc, size):
    cpu.regs[i.rd] = (pc + size) & _MASK64
    return (pc + i.imm) & _MASK64


def _h_jalr(cpu, i, pc, size):
    target = (cpu.regs[i.rs1] + i.imm) & _MASK64 & ~1
    cpu.regs[i.rd] = (pc + size) & _MASK64
    return target


def _branch(cond):
    def handler(cpu, i, pc, size):
        if cond(cpu.regs[i.rs1], cpu.regs[i.rs2]):
            return (pc + i.imm) & _MASK64
        return pc + size
    return handler


def _load(width, signed):
    def handler(cpu, i, pc, size):
        address = (cpu.regs[i.rs1] + i.imm) & _MASK64
        if signed:
            value = cpu.memory.load_signed(address, width) & _MASK64
        else:
            value = cpu.memory.load(address, width)
        cpu.regs[i.rd] = value
        return pc + size
    return handler


def _store(width):
    def handler(cpu, i, pc, size):
        address = (cpu.regs[i.rs1] + i.imm) & _MASK64
        cpu.memory.store(address, width, cpu.regs[i.rs2])
        return pc + size
    return handler


def _op_imm(fn):
    def handler(cpu, i, pc, size):
        cpu.regs[i.rd] = fn(cpu.regs[i.rs1], i.imm) & _MASK64
        return pc + size
    return handler


def _op(fn):
    def handler(cpu, i, pc, size):
        cpu.regs[i.rd] = fn(cpu.regs[i.rs1], cpu.regs[i.rs2]) & _MASK64
        return pc + size
    return handler


def _h_ecall(cpu, i, pc, size):
    return ECALL_SENTINEL


def _h_ebreak(cpu, i, pc, size):
    raise SimulatorError(f"ebreak at pc={pc:#x}")


def _h_fence(cpu, i, pc, size):
    return pc + size


def _div(a, b):
    if b == 0:
        return _MASK64
    sa, sb = _signed(a), _signed(b)
    if sa == _MIN64 and sb == -1:
        return a
    return _div_trunc(sa, sb)


def _divu(a, b):
    return _MASK64 if b == 0 else a // b


def _rem(a, b):
    if b == 0:
        return a
    sa, sb = _signed(a), _signed(b)
    if sa == _MIN64 and sb == -1:
        return 0
    return sa - _div_trunc(sa, sb) * sb


def _remu(a, b):
    return a if b == 0 else a % b


def _divw(a, b):
    sa, sb = _signed32(a), _signed32(b)
    if sb == 0:
        return _MASK64
    if sa == -(1 << 31) and sb == -1:
        return _sext32(sa)
    return _sext32(_div_trunc(sa, sb))


def _divuw(a, b):
    ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
    return _MASK64 if ub == 0 else _sext32(ua // ub)


def _remw(a, b):
    sa, sb = _signed32(a), _signed32(b)
    if sb == 0:
        return _sext32(sa)
    if sa == -(1 << 31) and sb == -1:
        return 0
    return _sext32(sa - _div_trunc(sa, sb) * sb)


def _remuw(a, b):
    ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
    return _sext32(ua) if ub == 0 else _sext32(ua % ub)


_HANDLERS = {
    "lui": _h_lui,
    "auipc": _h_auipc,
    "jal": _h_jal,
    "jalr": _h_jalr,
    "ecall": _h_ecall,
    "ebreak": _h_ebreak,
    "fence": _h_fence,

    "beq": _branch(lambda a, b: a == b),
    "bne": _branch(lambda a, b: a != b),
    "blt": _branch(lambda a, b: _signed(a) < _signed(b)),
    "bge": _branch(lambda a, b: _signed(a) >= _signed(b)),
    "bltu": _branch(lambda a, b: a < b),
    "bgeu": _branch(lambda a, b: a >= b),

    "lb": _load(1, True),
    "lh": _load(2, True),
    "lw": _load(4, True),
    "ld": _load(8, True),
    "lbu": _load(1, False),
    "lhu": _load(2, False),
    "lwu": _load(4, False),
    "sb": _store(1),
    "sh": _store(2),
    "sw": _store(4),
    "sd": _store(8),

    "addi": _op_imm(lambda a, imm: a + imm),
    "slti": _op_imm(lambda a, imm: 1 if _signed(a) < imm else 0),
    "sltiu": _op_imm(lambda a, imm: 1 if a < (imm & _MASK64) else 0),
    "xori": _op_imm(lambda a, imm: a ^ (imm & _MASK64)),
    "ori": _op_imm(lambda a, imm: a | (imm & _MASK64)),
    "andi": _op_imm(lambda a, imm: a & (imm & _MASK64)),
    "slli": _op_imm(lambda a, sh: a << sh),
    "srli": _op_imm(lambda a, sh: a >> sh),
    "srai": _op_imm(lambda a, sh: _signed(a) >> sh),
    "addiw": _op_imm(lambda a, imm: _sext32(a + imm)),
    "slliw": _op_imm(lambda a, sh: _sext32(a << sh)),
    "srliw": _op_imm(lambda a, sh: _sext32((a & 0xFFFFFFFF) >> sh)),
    "sraiw": _op_imm(lambda a, sh: _sext32(_signed32(a) >> sh)),

    "add": _op(lambda a, b: a + b),
    "sub": _op(lambda a, b: a - b),
    "sll": _op(lambda a, b: a << (b & 63)),
    "slt": _op(lambda a, b: 1 if _signed(a) < _signed(b) else 0),
    "sltu": _op(lambda a, b: 1 if a < b else 0),
    "xor": _op(lambda a, b: a ^ b),
    "srl": _op(lambda a, b: a >> (b & 63)),
    "sra": _op(lambda a, b: _signed(a) >> (b & 63)),
    "or": _op(lambda a, b: a | b),
    "and": _op(lambda a, b: a & b),
    "addw": _op(lambda a, b: _sext32(a + b)),
    "subw": _op(lambda a, b: _sext32(a - b)),
    "sllw": _op(lambda a, b: _sext32(a << (b & 31))),
    "srlw": _op(lambda a, b: _sext32((a & 0xFFFFFFFF) >> (b & 31))),
    "sraw": _op(lambda a, b: _sext32(_signed32(a) >> (b & 31))),

    "mul": _op(lambda a, b: a * b),
    "mulh": _op(lambda a, b: (_signed(a) * _signed(b)) >> 64),
    "mulhu": _op(lambda a, b: (a * b) >> 64),
    "mulhsu": _op(lambda a, b: (_signed(a) * b) >> 64),
    "div": _op(_div),
    "divu": _op(_divu),
    "rem": _op(_rem),
    "remu": _op(_remu),
    "mulw": _op(lambda a, b: _sext32(a * b)),
    "divw": _op(_divw),
    "divuw": _op(_divuw),
    "remw": _op(_remw),
    "remuw": _op(_remuw),
}
