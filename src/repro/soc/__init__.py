"""Rocket-like SoC simulator.

The paper's target hardware is a Rocket Chip: in-order, 6-stage, RV64GC,
16 KiB 4-way L1 instruction and data caches, running at 25 MHz on a
Zedboard (Table I).  This package provides the reproduction's equivalent:

* :mod:`repro.soc.memory`   — flat little-endian memory
* :mod:`repro.soc.cache`    — set-associative L1 cache models with LRU
* :mod:`repro.soc.counters` — performance counters (the values a
  dynamic-analysis attacker would observe)
* :mod:`repro.soc.pipeline` — the in-order timing model's cost table
* :mod:`repro.soc.cpu`      — functional RV64IM(+RVC) execution
* :mod:`repro.soc.soc`      — the SoC: fetch/decode cache, timing, syscalls

Fidelity: functional execution is exact; timing is a cycle-*approximate*
in-order model (base CPI 1 plus explicit stall/miss penalties).  The
Fig. 7 experiment only needs the ratio between HDE cycles and program
cycles, which this model carries faithfully.
"""

from repro.soc.counters import PerfCounters
from repro.soc.cache import Cache, CacheConfig
from repro.soc.memory import Memory
from repro.soc.pipeline import PipelineModel
from repro.soc.soc import RocketLikeSoC, RunResult

__all__ = [
    "PerfCounters",
    "Cache",
    "CacheConfig",
    "Memory",
    "PipelineModel",
    "RocketLikeSoC",
    "RunResult",
]
