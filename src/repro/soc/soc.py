"""The Rocket-like SoC: fetch, decode cache, timing, syscalls.

``RocketLikeSoC.run(program)`` is the reproduction's equivalent of "run a
binary on the FPGA and read the cycle counter": it loads the image,
executes to the exit syscall and returns console output plus the full
performance-counter state.

The syscall ABI (what the MiniC runtime targets) is intentionally tiny:

=====  =====================================================
a7     effect
=====  =====================================================
93     exit(a0) — ends the run, a0 is the exit code
1      putchar(a0 & 0xFF)
64     write(a0=fd ignored, a1=buffer, a2=length)
=====  =====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.asm.loader import load_program
from repro.asm.program import Program
from repro.errors import (
    ConfigError,
    DecodingError,
    ExecutionLimitExceeded,
    IllegalInstruction,
    SimulatorError,
)
from repro.isa.decoding import decode_at
from repro.isa.spec import BRANCHES, DIVS, JUMPS, LOADS, MULS, STORES
from repro.soc.cache import Cache, CacheConfig
from repro.soc.counters import PerfCounters
from repro.soc.cpu import ECALL_SENTINEL, Cpu
from repro.soc.memory import Memory
from repro.soc.pipeline import DEFAULT_PIPELINE, PipelineModel
from repro.soc.predecode import RunState, predecoded_for

_MASK64 = (1 << 64) - 1

SYS_EXIT = 93
SYS_PUTCHAR = 1
SYS_WRITE = 64

#: Clock of the prototype (Table I); converts cycles to wall time.
CLOCK_MHZ = 25.0

#: Interpreter used when a SoC is constructed without an explicit
#: ``run_mode``: "fast" dispatches predecoded superblocks
#: (:mod:`repro.soc.predecode`), "reference" steps one instruction at a
#: time.  Both produce bit-identical results; the differential harness
#: flips this module-global to drive whole farm stacks through the
#: reference path without threading a parameter everywhere.
DEFAULT_RUN_MODE = "fast"

_RUN_MODES = (None, "fast", "reference")


@dataclass
class RunResult:
    """Outcome of one program execution."""

    exit_code: int
    console: bytes
    counters: PerfCounters
    #: host wall seconds the interpreter spent producing this result —
    #: a property of the simulating machine, NOT of the simulated
    #: program, so it is deliberately excluded from :meth:`to_record`
    #: (two measurements of one job key must stay byte-comparable)
    wall_s: float = 0.0

    @property
    def stdout(self) -> str:
        return self.console.decode("latin-1")

    @property
    def cycles(self) -> int:
        return self.counters.cycles

    @property
    def sim_cycles_per_sec(self) -> float:
        """Interpreter throughput: simulated cycles per host second —
        the headline the fast-interpreter work optimizes."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.counters.cycles / self.wall_s

    def wall_time_at_clock(self, mhz: float = CLOCK_MHZ) -> float:
        """Seconds this run would take at the prototype's clock."""
        return self.counters.cycles / (mhz * 1e6)

    def to_record(self, include_mix: bool = False) -> dict:
        """JSON-safe view for the simulation-farm result store.

        The console survives as latin-1 text (byte-transparent, like
        :attr:`stdout`); the per-mnemonic mix is opt-in because it can
        dwarf the rest of the record.
        """
        record = {
            "exit_code": self.exit_code,
            "console": self.console.decode("latin-1"),
            "counters": self.counters.snapshot(),
        }
        if include_mix:
            record["mix"] = dict(self.counters.mix)
        return record

    @classmethod
    def from_record(cls, record: dict) -> "RunResult":
        """Rebuild a result from :meth:`to_record` output."""
        counters = PerfCounters.from_snapshot(record["counters"])
        counters.mix = dict(record.get("mix", {}))
        return cls(exit_code=record["exit_code"],
                   console=record["console"].encode("latin-1"),
                   counters=counters)


class RocketLikeSoC:
    """In-order RV64IM(+RVC) SoC with L1 caches and a timing model."""

    def __init__(self, memory_size: int = 1 << 20,
                 icache: CacheConfig = CacheConfig(),
                 dcache: CacheConfig = CacheConfig(),
                 pipeline: PipelineModel = DEFAULT_PIPELINE,
                 run_mode: str | None = None) -> None:
        if run_mode not in _RUN_MODES:
            raise ConfigError(f"unknown run_mode {run_mode!r}; "
                              f"expected 'fast' or 'reference'")
        self.memory = Memory(memory_size)
        self.icache = Cache(icache)
        self.dcache = Cache(dcache)
        self.pipeline = pipeline
        self.cpu = Cpu(self.memory)
        #: None defers to the module-level DEFAULT_RUN_MODE at run() time.
        self.run_mode = run_mode

    def run(self, program: Program,
            max_instructions: int = 20_000_000) -> RunResult:
        """Load ``program`` and execute until exit.

        Raises:
            IllegalInstruction: on undecodable fetch (e.g. ciphertext).
            ExecutionLimitExceeded: if the instruction budget runs out.
        """
        self.memory.clear()
        load_program(program, self.memory.raw)
        self.icache.flush()
        self.dcache.flush()
        self.icache.reset_stats()
        self.dcache.reset_stats()
        stack_top = (self.memory.size - 16) & ~0xF
        self.cpu.reset(program.entry, stack_top)
        mode = self.run_mode or DEFAULT_RUN_MODE
        if mode == "fast":
            return self._run_fast(program, max_instructions)
        return self._step_loop(self.cpu.pc, max_instructions,
                               PerfCounters(), bytearray(), -1,
                               time.perf_counter())

    # -- fast path: superblock dispatch -----------------------------------

    def _run_fast(self, program: Program,
                  max_instructions: int) -> RunResult:
        loop_start = time.perf_counter()
        pre = predecoded_for(program, self.icache.config,
                             self.dcache.config)
        cpu = self.cpu
        regs = cpu.regs
        raw = self.memory.raw
        ic = self.icache
        dc = self.dcache
        st = RunState()
        st.limit = max_instructions
        console = bytearray()
        execs = st.ex
        eget = execs.get
        bget = pre.blocks.get
        build = pre.build
        pc = cpu.pc
        ninstr = 0

        while True:
            blk = bget(pc)
            if blk is None:
                blk = build(pc)
            if blk.fn is None or ninstr + blk.n > max_instructions:
                # Undecodable head, or the whole trace may not fit in the
                # remaining budget: materialize the counters and let the
                # reference stepper replay the tail exactly (it raises
                # IllegalInstruction / ExecutionLimitExceeded itself).
                counters = self._finalize(st)
                return self._step_loop(pc, max_instructions, counters,
                                       console, st.plr, loop_start)
            execs[blk] = eget(blk, 0) + 1
            pc = blk.fn(regs, raw, dc, ic, st, ninstr)
            ninstr += blk.n
            x = st.nx
            if x:
                ninstr += x
                st.nx = 0
            if pc == -1:
                a7 = regs[17]
                if a7 == SYS_EXIT:
                    counters = self._finalize(st)
                    cpu.pc = blk.term_pc
                    return RunResult(
                        exit_code=regs[10] & 0xFF,
                        console=bytes(console),
                        counters=counters,
                        wall_s=time.perf_counter() - loop_start)
                if a7 == SYS_PUTCHAR:
                    console.append(regs[10] & 0xFF)
                elif a7 == SYS_WRITE:
                    console.extend(self.memory.load_bytes(regs[11],
                                                          regs[12]))
                else:
                    raise SimulatorError(f"unknown syscall a7={a7} "
                                         f"at pc={blk.term_pc:#x}")
                pc = blk.fall_pc

    def _finalize(self, st: RunState) -> PerfCounters:
        """Collapse the execution-count dict into full PerfCounters.

        Every total is either an exact sum of per-trace statics times
        execution counts, or derived from one (hits = accesses − misses;
        each cycle term mirrors the reference loop's per-instruction
        charge).  Also syncs the cache objects' hit counters, which the
        fast path skips maintaining per access."""
        pipe = self.pipeline
        ic = self.icache
        dc = self.dcache
        n = loads = stores = branches = taken = jumps = 0
        muls = d64 = d32 = stalls = n_mem = 0
        mix: dict[str, int] = {}
        for blk, c in st.ex.items():
            n += blk.n * c
            loads += blk.loads * c
            stores += blk.stores * c
            branches += blk.branches * c
            taken += blk.taken * c
            jumps += blk.jumps * c
            muls += blk.muls * c
            d64 += blk.divs64 * c
            d32 += blk.divs32 * c
            stalls += blk.stalls * c
            n_mem += blk.n_mem * c
            for name, k in blk.mixt:
                mix[name] = mix.get(name, 0) + k * c
        stalls += st.ds
        counters = PerfCounters()
        counters.mix = {k: v for k, v in mix.items() if v}
        ic_miss = ic.misses
        dc_miss = dc.misses
        ic.hits = n - ic_miss
        dc.hits = n_mem - dc_miss
        counters.instret = n
        counters.loads = loads
        counters.stores = stores
        counters.branches = branches
        counters.branches_taken = taken
        counters.jumps = jumps
        counters.muls = muls
        counters.divs = d64 + d32
        counters.icache_hits = n - ic_miss
        counters.icache_misses = ic_miss
        counters.dcache_hits = n_mem - dc_miss
        counters.dcache_misses = dc_miss
        counters.load_use_stalls = stalls
        counters.miss_stall_cycles = (ic_miss + dc_miss) * \
            pipe.miss_penalty
        counters.flush_cycles = (taken + jumps) * pipe.flush_penalty
        counters.muldiv_stall_cycles = (muls * pipe.mul_latency
                                        + d64 * pipe.div_latency
                                        + d32 * pipe.div32_latency)
        counters.cycles = (n * pipe.base_cpi
                           + stalls * pipe.load_use_stall
                           + counters.flush_cycles
                           + counters.muldiv_stall_cycles
                           + counters.miss_stall_cycles)
        return counters

    # -- reference path: one instruction at a time -------------------------

    def _step_loop(self, pc: int, max_instructions: int,
                   counters: PerfCounters, console: bytearray,
                   prev_load_rd: int, loop_start: float) -> RunResult:
        """The PR-7 interpreter loop, resumable from any materialized
        state — it both serves ``run_mode="reference"`` from reset and
        finishes fast runs whose next trace straddles the instruction
        budget."""
        cpu = self.cpu
        memory = self.memory
        regs = cpu.regs
        pipe = self.pipeline
        mix = counters.mix
        icache = self.icache
        dcache = self.dcache

        decoded: dict[int, tuple] = {}
        cycles = counters.cycles
        instret = counters.instret
        raw = memory.raw

        while True:
            if instret >= max_instructions:
                counters.cycles = cycles
                counters.instret = instret
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions",
                    pc=pc, counters=counters,
                )

            entry = decoded.get(pc)
            if entry is None:
                try:
                    instr, size = decode_at(raw, pc)
                except (DecodingError, IndexError):
                    word = int.from_bytes(raw[pc:pc + 4], "little")
                    counters.cycles = cycles
                    counters.instret = instret
                    raise IllegalInstruction(pc, word,
                                             counters=counters) from None
                name = instr.name
                kind = (
                    name in LOADS,
                    name in STORES,
                    name in BRANCHES,
                    name in JUMPS,
                    name in MULS,
                    name in DIVS,
                    name.endswith("w"),  # 32-bit divider is faster
                )
                entry = (instr, size, kind)
                decoded[pc] = entry
            instr, size, kind = entry
            is_load, is_store, is_branch, is_jump, is_mul, is_div, is_w = kind

            # --- timing: fetch -------------------------------------------
            if icache.access(pc):
                counters.icache_hits += 1
            else:
                counters.icache_misses += 1
                cycles += pipe.miss_penalty
                counters.miss_stall_cycles += pipe.miss_penalty
            cycles += pipe.base_cpi

            # --- timing: load-use hazard ---------------------------------
            if prev_load_rd > 0 and (instr.rs1 == prev_load_rd
                                     or instr.rs2 == prev_load_rd):
                cycles += pipe.load_use_stall
                counters.load_use_stalls += 1
            prev_load_rd = -1

            # Effective address must be sampled before execute: a load may
            # clobber its own base register (ld a0, 0(a0)).
            if is_load or is_store:
                mem_address = (regs[instr.rs1] + instr.imm) & _MASK64
            else:
                mem_address = 0

            # --- execute --------------------------------------------------
            next_pc = cpu.execute(instr, pc, size)
            instret += 1
            name = instr.name
            mix[name] = mix.get(name, 0) + 1

            # --- timing: per-class costs ---------------------------------
            if is_load or is_store:
                if dcache.access(mem_address):
                    counters.dcache_hits += 1
                else:
                    counters.dcache_misses += 1
                    cycles += pipe.miss_penalty
                    counters.miss_stall_cycles += pipe.miss_penalty
                if is_load:
                    counters.loads += 1
                    prev_load_rd = instr.rd
                else:
                    counters.stores += 1
            elif is_branch:
                counters.branches += 1
                if next_pc != pc + size:
                    counters.branches_taken += 1
                    cycles += pipe.flush_penalty
                    counters.flush_cycles += pipe.flush_penalty
            elif is_jump:
                counters.jumps += 1
                cycles += pipe.flush_penalty
                counters.flush_cycles += pipe.flush_penalty
            elif is_mul:
                counters.muls += 1
                cycles += pipe.mul_latency
                counters.muldiv_stall_cycles += pipe.mul_latency
            elif is_div:
                counters.divs += 1
                latency = pipe.div32_latency if is_w else pipe.div_latency
                cycles += latency
                counters.muldiv_stall_cycles += latency

            # --- syscalls --------------------------------------------------
            if next_pc == ECALL_SENTINEL:
                a7 = regs[17]
                if a7 == SYS_EXIT:
                    counters.cycles = cycles
                    counters.instret = instret
                    cpu.pc = pc
                    return RunResult(
                        exit_code=regs[10] & 0xFF,
                        console=bytes(console),
                        counters=counters,
                        wall_s=time.perf_counter() - loop_start)
                if a7 == SYS_PUTCHAR:
                    console.append(regs[10] & 0xFF)
                elif a7 == SYS_WRITE:
                    buffer = regs[11]
                    length = regs[12]
                    console.extend(memory.load_bytes(buffer, length))
                else:
                    raise SimulatorError(f"unknown syscall a7={a7} "
                                         f"at pc={pc:#x}")
                next_pc = pc + size

            pc = next_pc
