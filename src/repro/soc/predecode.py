"""Decode-once superblock compiler for the fast SoC interpreter.

The reference loop (`RocketLikeSoC._step_loop`) pays a dict lookup, an
``Instruction`` attribute walk, a handler call and ~15 counter updates
per retired instruction.  This module removes all of it from the hot
path by compiling the loaded image, once per program content digest,
into *superblocks*: dynamic straight-line traces whose per-execution
timing statistics (instruction count, class counts, static load-use
hazards, mul/div latency cycles, per-mnemonic mix) are precomputed, and
whose register/memory effects are emitted as specialized Python source
(operands, immediates and handler semantics bound at decode time) and
``exec``-compiled to a single function per trace.

Trace formation follows the dynamic path, not just the basic block:

* ``jal`` is glued through (the link write becomes a constant store);
* ``jalr ra, 0`` returns are glued to the matching call site via a
  build-time return stack, guarded at runtime when the trace cannot
  prove ``ra`` still holds the link constant;
* conditional branches are speculated in their likely direction
  (backward = taken, forward = not-taken) with a compiled *side exit*
  for the other direction;
* a trace that closes on its own head compiles to an internal loop that
  runs many iterations per dispatch under the instruction budget.

Bit-exactness contract: every counter the reference interpreter reports
is either event-exact (cache misses via real LRU updates at line
crossings only) or derived from exact totals (hits = accesses − misses;
cycles = instret·base_cpi + Σ stall terms), so
``PerfCounters.snapshot()`` of a fast run equals the reference run's.
Side exits account through *delta* pseudo-blocks holding the negated
suffix statistics, keeping the one-dict-update-per-dispatch discipline.

Known caveat (shared with the reference decode cache, which also never
invalidates): self-modifying text is not supported.
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict

from repro.errors import DecodingError, MemoryFault, SimulatorError
from repro.isa.decoding import decode_at
from repro.isa.spec import BRANCHES, DIVS, JUMPS, LOADS, MULS, STORES
from repro.soc import cpu as _cpu
from repro.soc.memory import fix_load, fix_store

_MASK64 = (1 << 64) - 1

#: Maximum ops per trace: bounds compile time per block while keeping
#: whole loop bodies (condition + body + glued calls + latch) in one fn.
MAX_TRACE_OPS = 96

#: Predecoded programs cached per (content digest, cache geometries).
_CACHE_CAP = 32
_CACHE: OrderedDict[tuple, "PredecodedProgram"] = OrderedDict()

_STAT_FIELDS = ("n", "loads", "stores", "branches", "taken", "jumps",
                "muls", "divs64", "divs32", "stalls", "n_mem")


class RunState:
    """Mutable per-run scratch shared between the dispatch loop and the
    generated trace functions."""

    __slots__ = ("limit", "nx", "ds", "plr", "ex")

    def __init__(self) -> None:
        self.limit = 0      # instruction budget
        self.nx = 0         # pending instret adjustment (loops/side exits)
        self.ds = 0         # dynamic (cross-dispatch) load-use stalls
        self.plr = -1       # rd of the previously retired load, else -1
        self.ex = {}        # Superblock/ExitDelta -> execution count


class ExitDelta:
    """Static-statistics delta charged when a trace leaves through a
    side exit: the negated suffix of the trace after the exit op, plus
    the exit's own branch-direction adjustment.  Shares field names with
    :class:`Superblock` so finalization merges both uniformly."""

    __slots__ = _STAT_FIELDS + ("mixt",)

    def __init__(self, **kw) -> None:
        for name in _STAT_FIELDS:
            setattr(self, name, kw.get(name, 0))
        self.mixt = kw.get("mixt", ())


class Superblock:
    """One compiled trace plus its per-execution static statistics."""

    __slots__ = _STAT_FIELDS + (
        "mixt", "start", "fn", "word", "term_pc", "fall_pc", "src")

    def __init__(self, start: int) -> None:
        for name in _STAT_FIELDS:
            setattr(self, name, 0)
        self.mixt = ()
        self.start = start
        self.fn = None        # None => undecodable head (illegal fetch)
        self.word = 0         # raw word for IllegalInstruction
        self.term_pc = 0      # pc of the terminating instruction (ecall)
        self.fall_pc = 0      # resume pc after a non-exit syscall
        self.src = ""         # generated source (debugging aid)


class _Op:
    """One instruction on the trace path, with its speculation role."""

    __slots__ = ("pc", "size", "instr", "role", "target", "expected")

    def __init__(self, pc, size, instr, role="plain",
                 target=0, expected=0):
        self.pc = pc
        self.size = size
        self.instr = instr
        self.role = role          # plain | spec_taken | spec_not_taken
        self.target = target      # | glued_jal | glued_ret
        self.expected = expected  # predicted link value for glued_ret


def _digest(program) -> bytes:
    h = hashlib.sha256()
    h.update(program.text)
    h.update(program.data)
    h.update(struct.pack("<qqq", program.text_base, program.data_base,
                         program.entry))
    return h.digest()


def predecoded_for(program, icache_cfg, dcache_cfg) -> "PredecodedProgram":
    """Fetch (or build) the predecoded form of ``program`` for the given
    cache geometries, LRU-cached per content digest so repeated farm
    jobs over the same artifact never re-decode."""
    key = (_digest(program), icache_cfg, dcache_cfg)
    pre = _CACHE.get(key)
    if pre is not None:
        _CACHE.move_to_end(key)
        return pre
    pre = PredecodedProgram(program, icache_cfg, dcache_cfg)
    _CACHE[key] = pre
    while len(_CACHE) > _CACHE_CAP:
        _CACHE.popitem(last=False)
    return pre


class PredecodedProgram:
    """Superblock store for one program image: builds traces lazily at
    first dispatch of each entry pc and caches the compiled blocks."""

    def __init__(self, program, icache_cfg, dcache_cfg) -> None:
        size = max(program.text_base + len(program.text),
                   program.data_base + len(program.data))
        img = bytearray(size)
        img[program.text_base:program.text_base + len(program.text)] = \
            program.text
        img[program.data_base:program.data_base + len(program.data)] = \
            program.data
        # Pad past the image end so a decode straddling the last bytes
        # sees the same zero bytes the reference reads from the (larger,
        # zero-initialised) runtime memory, not a truncation error.
        self.img = bytes(img) + b"\x00" * 8
        self.ic_shift = icache_cfg.line_bytes.bit_length() - 1
        self.ic_sets = icache_cfg.n_sets
        self.ic_ways = icache_cfg.ways
        self.dc_shift = dcache_cfg.line_bytes.bit_length() - 1
        self.dc_mask = dcache_cfg.n_sets - 1
        self.blocks: dict[int, Superblock] = {}
        self._shared = _shared_globals()

    def build(self, pc: int) -> Superblock:
        blk = self._build(pc)
        self.blocks[pc] = blk
        return blk

    # -- trace construction ----------------------------------------------

    def _build(self, start: int) -> Superblock:
        img = self.img
        blk = Superblock(start)
        try:
            decode_at(img, start)
        except (DecodingError, IndexError):
            blk.word = int.from_bytes(img[start:start + 4], "little")
            blk.n = 1    # budget weight only; never enters exec counts
            return blk

        ops: list[_Op] = []
        seen: set[int] = set()
        ret_stack: list[int] = []
        pc = start
        term = ("fall", start)   # overwritten below
        while True:
            if pc in seen:
                term = ("loop", None) if pc == start else ("goto", pc)
                break
            if len(ops) >= MAX_TRACE_OPS:
                term = ("goto", pc)
                break
            try:
                instr, size = decode_at(img, pc)
            except (DecodingError, IndexError):
                term = ("goto", pc)   # next dispatch raises illegal
                break
            name = instr.name
            if name in BRANCHES:
                target = (pc + instr.imm) & _MASK64
                if target == pc + size:
                    # Both directions land on pc+size: the reference loop
                    # (taken iff next_pc != pc+size) never counts it taken,
                    # so compile it as a plain no-op with branch class cost.
                    ops.append(_Op(pc, size, instr))
                    seen.add(pc)
                    pc += size
                    continue
                if target <= pc:
                    ops.append(_Op(pc, size, instr, "spec_taken",
                                   target=pc + size))
                    seen.add(pc)
                    pc = target
                else:
                    ops.append(_Op(pc, size, instr, "spec_not_taken",
                                   target=target))
                    seen.add(pc)
                    pc += size
                continue
            if name == "jal":
                target = (pc + instr.imm) & _MASK64
                link = pc + size
                if instr.rd == 1:
                    ret_stack.append(link)
                ops.append(_Op(pc, size, instr, "glued_jal",
                               target=target))
                seen.add(pc)
                pc = target
                continue
            if name == "jalr":
                if instr.rs1 == 1 and instr.imm == 0 and ret_stack:
                    expected = ret_stack.pop()
                    ops.append(_Op(pc, size, instr, "glued_ret",
                                   target=expected, expected=expected))
                    seen.add(pc)
                    pc = expected
                    continue
                ops.append(_Op(pc, size, instr))
                term = ("jalr", None)
                break
            if name == "ecall":
                ops.append(_Op(pc, size, instr))
                term = ("ecall", pc)
                break
            if name == "ebreak":
                ops.append(_Op(pc, size, instr))
                term = ("ebreak", pc)
                break
            ops.append(_Op(pc, size, instr))
            seen.add(pc)
            pc += size

        _Codegen(self, blk, ops, term).run()
        return blk

# -- generated-code vocabulary -------------------------------------------
#
# Expression templates per mnemonic.  ``a``/``b`` are already-rendered
# operand expressions (register local, ``regs[i]`` subscript, or folded
# constant); semantics mirror soc.cpu's handler table exactly, including
# where the & 2^64-1 mask is provably redundant and can be dropped.

_ALU_R = {
    "add": lambda a, b: f"({a} + {b}) & M",
    "sub": lambda a, b: f"({a} - {b}) & M",
    "sll": lambda a, b: f"({a} << ({b} & 63)) & M",
    "slt": lambda a, b: f"1 if sgn({a}) < sgn({b}) else 0",
    "sltu": lambda a, b: f"1 if {a} < {b} else 0",
    "xor": lambda a, b: f"{a} ^ {b}",
    "srl": lambda a, b: f"{a} >> ({b} & 63)",
    "sra": lambda a, b: f"(sgn({a}) >> ({b} & 63)) & M",
    "or": lambda a, b: f"{a} | {b}",
    "and": lambda a, b: f"{a} & {b}",
    "addw": lambda a, b: f"sx32({a} + {b})",
    "subw": lambda a, b: f"sx32({a} - {b})",
    "sllw": lambda a, b: f"sx32({a} << ({b} & 31))",
    "srlw": lambda a, b: f"sx32(({a} & 0xFFFFFFFF) >> ({b} & 31))",
    "sraw": lambda a, b: f"sx32(s32({a}) >> ({b} & 31))",
    "mul": lambda a, b: f"({a} * {b}) & M",
    "mulh": lambda a, b: f"((sgn({a}) * sgn({b})) >> 64) & M",
    "mulhu": lambda a, b: f"({a} * {b}) >> 64",
    "mulhsu": lambda a, b: f"((sgn({a}) * {b}) >> 64) & M",
    "mulw": lambda a, b: f"sx32({a} * {b})",
    "div": lambda a, b: f"dv({a}, {b}) & M",
    "divu": lambda a, b: f"dvu({a}, {b}) & M",
    "rem": lambda a, b: f"rm({a}, {b}) & M",
    "remu": lambda a, b: f"rmu({a}, {b}) & M",
    "divw": lambda a, b: f"dvw({a}, {b}) & M",
    "divuw": lambda a, b: f"dvuw({a}, {b}) & M",
    "remw": lambda a, b: f"rmw({a}, {b}) & M",
    "remuw": lambda a, b: f"rmuw({a}, {b}) & M",
}

_ALU_I = {
    "addi": lambda a, i: a if i == 0 else f"({a} + {i}) & M",
    "slti": lambda a, i: f"1 if sgn({a}) < {i} else 0",
    "sltiu": lambda a, i: f"1 if {a} < {i & _MASK64} else 0",
    "xori": lambda a, i: f"{a} ^ {i & _MASK64}",
    "ori": lambda a, i: f"{a} | {i & _MASK64}",
    "andi": lambda a, i: f"{a} & {i & _MASK64}",
    "slli": lambda a, i: a if i == 0 else f"({a} << {i}) & M",
    "srli": lambda a, i: a if i == 0 else f"{a} >> {i}",
    "srai": lambda a, i: f"(sgn({a}) >> {i}) & M",
    "addiw": lambda a, i: f"sx32({a} + {i})",
    "slliw": lambda a, i: f"sx32({a} << {i})",
    "srliw": lambda a, i: f"sx32(({a} & 0xFFFFFFFF) >> {i})",
    "sraiw": lambda a, i: f"sx32(s32({a}) >> {i})",
}

#: (condition, negated condition) per branch mnemonic.
_BRANCH_COND = {
    "beq": (lambda a, b: f"{a} == {b}", lambda a, b: f"{a} != {b}"),
    "bne": (lambda a, b: f"{a} != {b}", lambda a, b: f"{a} == {b}"),
    "blt": (lambda a, b: f"sgn({a}) < sgn({b})",
            lambda a, b: f"sgn({a}) >= sgn({b})"),
    "bge": (lambda a, b: f"sgn({a}) >= sgn({b})",
            lambda a, b: f"sgn({a}) < sgn({b})"),
    "bltu": (lambda a, b: f"{a} < {b}", lambda a, b: f"{a} >= {b}"),
    "bgeu": (lambda a, b: f"{a} >= {b}", lambda a, b: f"{a} < {b}"),
}

#: loads: name -> (width, signed flag, value template over (raw, addr))
_LOAD_EXPR = {
    "ld": (8, 1, lambda av: f"q8(raw, {av})[0]"),
    "lw": (4, 1, lambda av: f"qs4(raw, {av})[0] & M"),
    "lh": (2, 1, lambda av: f"qs2(raw, {av})[0] & M"),
    "lb": (1, 1, lambda av: f"qs1(raw, {av})[0] & M"),
    "lwu": (4, 0, lambda av: f"q4(raw, {av})[0]"),
    "lhu": (2, 0, lambda av: f"q2(raw, {av})[0]"),
    "lbu": (1, 0, lambda av: f"raw[{av}]"),
}

#: stores: name -> (width, statement template over (addr, value expr))
_STORE_STMT = {
    "sd": (8, lambda av, v: f"p8(raw, {av}, {v})"),
    "sw": (4, lambda av, v: f"p4(raw, {av}, {v} & 0xFFFFFFFF)"),
    "sh": (2, lambda av, v: f"p2(raw, {av}, {v} & 0xFFFF)"),
    "sb": (1, lambda av, v: f"raw[{av}] = {v} & 255"),
}


def _shared_globals() -> dict:
    """Base globals for every exec'd trace function (copied per trace so
    per-trace constants — BLK, exit deltas — can be injected)."""
    return {
        "__builtins__": {},
        "M": _MASK64,
        "ME": _MASK64 & ~1,
        "q2": struct.Struct("<H").unpack_from,
        "q4": struct.Struct("<I").unpack_from,
        "q8": struct.Struct("<Q").unpack_from,
        "qs1": struct.Struct("<b").unpack_from,
        "qs2": struct.Struct("<h").unpack_from,
        "qs4": struct.Struct("<i").unpack_from,
        "p2": struct.Struct("<H").pack_into,
        "p4": struct.Struct("<I").pack_into,
        "p8": struct.Struct("<Q").pack_into,
        "SE": struct.error,
        "IndexError": IndexError,   # not reachable via empty __builtins__
        "sgn": _cpu._signed,
        "s32": _cpu._signed32,
        "sx32": _cpu._sext32,
        "dv": _cpu._div,
        "dvu": _cpu._divu,
        "rm": _cpu._rem,
        "rmu": _cpu._remu,
        "dvw": _cpu._divw,
        "dvuw": _cpu._divuw,
        "rmw": _cpu._remw,
        "rmuw": _cpu._remuw,
        "lfix": fix_load,
        "sfix": fix_store,
        "SimulatorError": SimulatorError,
        "MemoryFault": MemoryFault,
    }


class _Codegen:
    """Emits one superblock's specialized Python source and compiles it.

    The emitted function has signature ``f(regs, raw, dc, ic, st, ni)``
    and returns the next dispatch pc (``-1`` for ecall).  Register reads
    render as locals (loop traces) or ``regs[i]`` subscripts, constants
    are propagated through ``lui``/``auipc``/``addi``/``jal`` links,
    icache accesses are emitted only at fetch-line crossings, and the
    dcache check inlines the same-line + MRU-of-set fast path with
    :meth:`Cache._slow` behind it.  Static per-execution statistics
    accumulate into the block; each side exit snapshots its prefix to
    build the matching :class:`ExitDelta`.
    """

    def __init__(self, pre, blk, ops, term):
        self.pre = pre
        self.blk = blk
        self.ops = ops
        self.term = term
        self.loop = term[0] == "loop"
        self.lines: list[str] = []
        self.known = {0: 0}       # reg -> propagated constant
        self.ver = {}             # reg -> write version (addr reuse keys)
        self.addrmap = {}         # (reg, ver, imm) -> rendered address
        self.last_tag = None      # address tag of the previous mem op
        self.stats = {f: 0 for f in _STAT_FIELDS}
        self.mix = {}
        self.exits = []           # (delta name, prefix stats, prefix mix, adj)
        self.tmp = 0
        self.fetch_seq = []       # consecutive-deduped fetch lines so far
        self.cur_line = None
        self.body = 1
        self.back_stall = 0
        self.warm = False

    # -- small emission helpers ------------------------------------------

    def e(self, ind: int, text: str) -> None:
        self.lines.append("    " * ind + text)

    def tvar(self) -> str:
        self.tmp += 1
        return f"t{self.tmp}"

    def fetch(self, ind: int, ln: int, prefix: str = "if ") -> None:
        """Emit one icache touch of constant line ``ln``.  When the line
        is already MRU of its set the reference access is a hit whose
        LRU reorder is the identity, so the call is skipped entirely;
        :meth:`Cache._slow` handles both remaining cases exactly."""
        idx = ln & (self.pre.ic_sets - 1)
        self.e(ind, f"{prefix}im[{idx}] != {ln}: ica({ln}, 0)")

    def R(self, r) -> str:
        """Rendered read of register ``r``."""
        if not r:
            return "0"
        v = self.known.get(r)
        if v is not None:
            return str(v)
        return f"r{r}" if self.loop else f"regs[{r}]"

    def wtarget(self, rd) -> str:
        if not rd:
            return "z"            # x0: execute for side effects, discard
        return f"r{rd}" if self.loop else f"regs[{rd}]"

    def note_write(self, rd, const=None) -> None:
        if not rd:
            return
        self.ver[rd] = self.ver.get(rd, 0) + 1
        if const is None:
            self.known.pop(rd, None)
        else:
            self.known[rd] = const

    def W(self, rd, expr: str, const=None) -> None:
        self.e(self.body, f"{self.wtarget(rd)} = {expr}")
        self.note_write(rd, const)

    @staticmethod
    def _plr_of(instr) -> int:
        return instr.rd if (instr.name in LOADS and instr.rd) else -1

    # -- statistics -------------------------------------------------------

    def add_stats(self, op, prev) -> None:
        s = self.stats
        i = op.instr
        name = i.name
        s["n"] += 1
        self.mix[name] = self.mix.get(name, 0) + 1
        if name in LOADS:
            s["loads"] += 1
            s["n_mem"] += 1
        elif name in STORES:
            s["stores"] += 1
            s["n_mem"] += 1
        elif name in BRANCHES:
            s["branches"] += 1
            if op.role == "spec_taken":
                s["taken"] += 1
        elif name in JUMPS:
            s["jumps"] += 1
        elif name in MULS:
            s["muls"] += 1
        elif name in DIVS:
            s["divs32" if name.endswith("w") else "divs64"] += 1
        if prev is not None and prev.name in LOADS and prev.rd and \
                (i.rs1 == prev.rd or i.rs2 == prev.rd):
            s["stalls"] += 1

    # -- exit paths -------------------------------------------------------

    def sync(self, ind: int, plr: int, late_write=None) -> None:
        """Writeback + cache-local + hazard-state flush before a return."""
        e = self.e
        if self.loop:
            for r in self.written:
                e(ind, f"regs[{r}] = r{r}")
        if late_write is not None:
            rd, val = late_write
            e(ind, f"regs[{rd}] = {val}")
        if self.has_mem:
            e(ind, "dc._last_line = dl")
        e(ind, f"st.plr = {plr}")

    def side_exit(self, ind: int, target: str, adj: int,
                  late_write=None) -> None:
        e = self.e
        dname = f"D{len(self.exits)}"
        self.exits.append((dname, dict(self.stats), dict(self.mix), adj))
        e(ind, "e = st.ex")
        if self.loop:
            e(ind, "e[BLK] += it")
            e(ind, f"e[{dname}] = e.get({dname}, 0) + 1")
            e(ind, f"st.nx = it * {len(self.ops)} + {dname}.n")
            if self.back_stall:
                e(ind, "st.ds += it")
            if self.warm:
                # Re-touch this partial iteration's fetch lines: warm
                # iterations skip their (all-hit) icache accesses, which
                # is LRU-exact only at iteration boundaries.
                e(ind, "if it:")
                for ln in self.fetch_seq:
                    self.fetch(ind + 1, ln)
        else:
            e(ind, f"e[{dname}] = e.get({dname}, 0) + 1")
            e(ind, f"st.nx = {dname}.n")
        self.sync(ind, -1, late_write)
        e(ind, f"return {target}")

    # -- per-op emission --------------------------------------------------

    def gen_op(self, op) -> None:
        i = op.instr
        name = i.name
        role = op.role
        if role != "plain":
            if role == "glued_jal":
                link = (op.pc + op.size) & _MASK64
                if i.rd:
                    self.W(i.rd, str(link), const=link)
                return
            if role == "glued_ret":
                link = (op.pc + op.size) & _MASK64
                exp = op.expected
                if self.known.get(1) != exp:
                    a = self.R(1)
                    self.e(self.body, f"if {a} != {exp}:")
                    t = self.tvar()
                    self.e(self.body + 1, f"{t} = {a} & -2")
                    self.side_exit(self.body + 1, t, 0,
                                   late_write=(i.rd, link) if i.rd else None)
                if i.rd:
                    self.W(i.rd, str(link), const=link)
                return
            # speculated conditional branch: guard emits the other
            # direction as a side exit with a taken-count adjustment.
            cond, neg = _BRANCH_COND[name]
            a, b2 = self.R(i.rs1), self.R(i.rs2)
            if role == "spec_taken":
                guard, adj = neg(a, b2), -1
            else:
                guard, adj = cond(a, b2), 1
            self.e(self.body, f"if {guard}:")
            self.side_exit(self.body + 1, str(op.target), adj)
            return
        if name in _ALU_I:
            if name == "addi":
                ka = self.known.get(i.rs1)
                if ka is not None:
                    v = (ka + i.imm) & _MASK64
                    if i.rd:
                        self.W(i.rd, str(v), const=v)
                    return
            if i.rd:
                self.W(i.rd, _ALU_I[name](self.R(i.rs1), i.imm))
            return
        if name in _ALU_R:
            if i.rd:
                self.W(i.rd, _ALU_R[name](self.R(i.rs1), self.R(i.rs2)))
            return
        if name in _LOAD_EXPR or name in _STORE_STMT:
            self.gen_mem(op)
            return
        if name == "lui" or name == "auipc":
            v = i.imm << 12
            if v & 0x80000000:
                v |= 0xFFFFFFFF00000000
            if name == "auipc":
                v = (op.pc + v) & _MASK64
            if i.rd:
                self.W(i.rd, str(v), const=v)
            return
        if name in BRANCHES or name == "fence":
            return            # degenerate branch / nop: class cost only
        raise SimulatorError(f"predecode: unsupported op {name!r}")

    def gen_mem(self, op) -> None:
        pre = self.pre
        e = self.e
        b = self.body
        i = op.instr
        name = i.name
        imm = i.imm
        ka = self.known.get(i.rs1)
        addr = None
        if ka is not None:
            addr = (ka + imm) & _MASK64
            av = str(addr)
            tag = ("c", addr)
        else:
            base = self.R(i.rs1)
            tag = (i.rs1, self.ver.get(i.rs1, 0), imm)
            av = self.addrmap.get(tag)
            if av is None:
                if imm == 0:
                    av = base
                else:
                    av = self.tvar()
                    if imm < 0:
                        # Negative displacement can wrap below zero; the
                        # struct codecs accept negative offsets silently
                        # (indexing from the end), so mask eagerly.
                        e(b, f"{av} = ({base} + {imm}) & M")
                    else:
                        e(b, f"{av} = {base} + {imm}")
                self.addrmap[tag] = av
        if tag != self.last_tag:
            # Same address as the op immediately before => same line and
            # the reference's one-entry fast path, which mutates nothing.
            self.last_tag = tag
            if addr is not None:
                lc = addr >> pre.dc_shift
                e(b, f"if dl != {lc}:")
                e(b + 1, f"dl = {lc}")
                e(b + 1, f"if mru[{lc & pre.dc_mask}] != {lc}:")
                e(b + 2, f"da({lc}, {addr})")
            else:
                lv = self.tvar()
                e(b, f"{lv} = {av} >> {pre.dc_shift}")
                e(b, f"if {lv} != dl:")
                e(b + 1, f"dl = {lv}")
                e(b + 1, f"if mru[{lv} & {pre.dc_mask}] != {lv}:")
                e(b + 2, f"da({lv}, {av})")
        if name in _LOAD_EXPR:
            width, signed, val = _LOAD_EXPR[name]
            tgt = self.wtarget(i.rd)
            e(b, "try:")
            e(b + 1, f"{tgt} = {val(av)}")
            e(b, "except (SE, IndexError):")
            e(b + 1, f"{tgt} = lfix(raw, {av}, {width}, {signed})")
            self.note_write(i.rd)
        else:
            width, stmt = _STORE_STMT[name]
            v = self.R(i.rs2)
            e(b, "try:")
            e(b + 1, stmt(av, v))
            e(b, "except (SE, IndexError):")
            e(b + 1, f"sfix(raw, {av}, {width}, {v})")

    # -- terminators ------------------------------------------------------

    def gen_term(self) -> None:
        term = self.term
        kind = term[0]
        ops = self.ops
        b = self.body
        e = self.e
        blk = self.blk
        last = ops[-1]
        blk.term_pc = last.pc
        if kind == "goto":
            self.sync(b, self._plr_of(last.instr))
            e(b, f"return {term[1]}")
        elif kind == "loop":
            e(b, "it += 1")
            e(b, "if it == cap:")
            e(b + 1, "x = it - 1")
            e(b + 1, "if x:")
            e(b + 2, "e = st.ex")
            e(b + 2, "e[BLK] += x")
            e(b + 2, f"st.nx = x * {len(ops)}")
            if self.back_stall:
                e(b + 1, "st.ds += x")
            self.sync(b + 1, self._plr_of(last.instr))
            e(b + 1, f"return {blk.start}")
        elif kind == "jalr":
            i = last.instr
            a = self.R(i.rs1)
            t = self.tvar()
            if i.imm == 0:
                e(b, f"{t} = {a} & -2")
            else:
                e(b, f"{t} = ({a} + {i.imm}) & ME")
            if i.rd:
                link = (last.pc + last.size) & _MASK64
                self.W(i.rd, str(link), const=link)
            self.sync(b, -1)
            e(b, f"return {t}")
        elif kind == "ecall":
            self.sync(b, -1)
            e(b, "return -1")
            blk.fall_pc = term[1] + last.size
        else:  # ebreak: reference raises from execute, counters unread
            self.sync(b, -1)
            e(b, f'raise SimulatorError("ebreak at pc={term[1]:#x}")')

    # -- driver -----------------------------------------------------------

    def run(self) -> None:
        ops = self.ops
        pre = self.pre
        loop = self.loop
        e = self.e
        instrs = [op.instr for op in ops]
        self.touched = sorted(
            {r for i in instrs for r in (i.rs1, i.rs2, i.rd) if r})
        self.written = sorted({i.rd for i in instrs if i.rd})
        self.has_mem = any(
            i.name in LOADS or i.name in STORES for i in instrs)
        op_lines = [op.pc >> pre.ic_shift for op in ops]
        if loop:
            li = instrs[-1]
            if li.name in LOADS and li.rd and \
                    (instrs[0].rs1 == li.rd or instrs[0].rs2 == li.rd):
                self.back_stall = 1
            # Warm elision: every icache set the iteration touches can
            # hold all of that iteration's distinct lines at once, so
            # iterations 2+ are pure hits whose full-iteration LRU churn
            # is order-idempotent — skip the calls entirely.
            per_set = {}
            for ln in set(op_lines):
                per_set.setdefault(ln & (pre.ic_sets - 1), set()).add(ln)
            self.warm = all(
                len(v) <= pre.ic_ways for v in per_set.values())
        e(0, "def f(regs, raw, dc, ic, st, ni):")
        if self.has_mem:
            e(1, "dl = dc._last_line")
            e(1, "mru = dc._mru")
            e(1, "da = dc._slow")
        e(1, "im = ic._mru")
        e(1, "ica = ic._slow")
        i0 = instrs[0]
        hazard_regs = sorted({r for r in (i0.rs1, i0.rs2) if r})
        if len(hazard_regs) == 2:
            e(1, "p = st.plr")
            e(1, f"if p > 0 and (p == {hazard_regs[0]}"
                 f" or p == {hazard_regs[1]}):")
            e(2, "st.ds += 1")
        elif len(hazard_regs) == 1:
            e(1, f"if 0 < st.plr == {hazard_regs[0]}:")
            e(2, "st.ds += 1")
        l0 = op_lines[0]
        if loop:
            for r in self.touched:
                e(1, f"r{r} = regs[{r}]")
            e(1, "it = 0")
            e(1, f"cap = (st.limit - ni) // {len(ops)}")
            e(1, "while True:")
            self.body = 2
            if self.warm:
                self.fetch(2, l0, prefix="if not it and ")
            else:
                self.fetch(2, l0)
        else:
            self.body = 1
            self.fetch(1, l0)
        self.fetch_seq = [l0]
        self.cur_line = l0

        special_last = self.term[0] in ("jalr", "ecall", "ebreak")
        n_ops = len(ops)
        for k, op in enumerate(ops):
            ln = op_lines[k]
            if ln != self.cur_line:
                self.cur_line = ln
                self.fetch_seq.append(ln)
                if loop and self.warm:
                    self.fetch(self.body, ln, prefix="if not it and ")
                else:
                    self.fetch(self.body, ln)
            self.add_stats(op, instrs[k - 1] if k else None)
            if special_last and k == n_ops - 1:
                break
            self.gen_op(op)
        self.gen_term()
        self.finish()

    def finish(self) -> None:
        blk = self.blk
        tot = self.stats
        for fname in _STAT_FIELDS:
            setattr(blk, fname, tot[fname])
        blk.mixt = tuple(sorted(self.mix.items()))
        deltas = []
        for _, pstats, pmix, adj in self.exits:
            kw = {f: pstats[f] - tot[f] for f in _STAT_FIELDS}
            kw["taken"] += adj
            md = [(k, pmix.get(k, 0) - c) for k, c in self.mix.items()
                  if pmix.get(k, 0) != c]
            deltas.append(ExitDelta(mixt=tuple(sorted(md)), **kw))
        src = "\n".join(self.lines)
        blk.src = src
        code = compile(src, f"<superblock@{blk.start:#x}>", "exec")
        env = dict(self.pre._shared)
        env["BLK"] = blk
        for idx, delta in enumerate(deltas):
            env[f"D{idx}"] = delta
        exec(code, env)
        blk.fn = env["f"]
