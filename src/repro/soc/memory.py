"""Flat little-endian memory with bounds checking."""

from __future__ import annotations

from repro.errors import MemoryFault

_MASK64 = (1 << 64) - 1


class Memory:
    """Byte-addressable memory backed by a ``bytearray``.

    The CPU's hot paths use :attr:`raw` directly after a single bounds
    check; these helper methods are the safe API used by loaders, the HDE
    and tests.
    """

    def __init__(self, size: int = 1 << 20) -> None:
        if size <= 0:
            raise MemoryFault("memory size must be positive")
        self.size = size
        self.raw = bytearray(size)

    def check_range(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size:
            raise MemoryFault(
                f"access [{address:#x}, {address + length:#x}) outside "
                f"{self.size:#x}-byte memory"
            )

    def load(self, address: int, length: int) -> int:
        """Unsigned little-endian load of ``length`` bytes."""
        self.check_range(address, length)
        return int.from_bytes(self.raw[address:address + length], "little")

    def load_signed(self, address: int, length: int) -> int:
        value = self.load(address, length)
        sign_bit = 1 << (length * 8 - 1)
        return value - (1 << (length * 8)) if value & sign_bit else value

    def store(self, address: int, length: int, value: int) -> None:
        self.check_range(address, length)
        self.raw[address:address + length] = \
            (value & ((1 << (length * 8)) - 1)).to_bytes(length, "little")

    def load_bytes(self, address: int, length: int) -> bytes:
        self.check_range(address, length)
        return bytes(self.raw[address:address + length])

    def store_bytes(self, address: int, blob: bytes) -> None:
        self.check_range(address, len(blob))
        self.raw[address:address + len(blob)] = blob
