"""Flat little-endian memory with bounds checking."""

from __future__ import annotations

from repro.errors import MemoryFault

_MASK64 = (1 << 64) - 1


class Memory:
    """Byte-addressable memory backed by a ``bytearray``.

    The CPU's hot paths use :attr:`raw` directly after a single bounds
    check; these helper methods are the safe API used by loaders, the HDE
    and tests.
    """

    def __init__(self, size: int = 1 << 20) -> None:
        if size <= 0:
            raise MemoryFault("memory size must be positive")
        self.size = size
        self.raw = bytearray(size)
        self._zeros: bytes | None = None

    def clear(self) -> None:
        """Zero the image in place.  ``raw`` keeps its identity (views
        and cached references stay valid) and, unlike
        ``raw[:] = bytes(size)``, no fresh size-byte buffer is allocated
        per call — the zero source is built once and reused."""
        zeros = self._zeros
        if zeros is None:
            zeros = self._zeros = bytes(self.size)
        self.raw[:] = zeros

    def check_range(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size:
            raise MemoryFault(
                f"access [{address:#x}, {address + length:#x}) outside "
                f"{self.size:#x}-byte memory"
            )

    def load(self, address: int, length: int) -> int:
        """Unsigned little-endian load of ``length`` bytes."""
        self.check_range(address, length)
        return int.from_bytes(self.raw[address:address + length], "little")

    def load_signed(self, address: int, length: int) -> int:
        value = self.load(address, length)
        sign_bit = 1 << (length * 8 - 1)
        return value - (1 << (length * 8)) if value & sign_bit else value

    def store(self, address: int, length: int, value: int) -> None:
        self.check_range(address, length)
        self.raw[address:address + length] = \
            (value & ((1 << (length * 8)) - 1)).to_bytes(length, "little")

    def load_bytes(self, address: int, length: int) -> bytes:
        self.check_range(address, length)
        return bytes(self.raw[address:address + length])

    def store_bytes(self, address: int, blob: bytes) -> None:
        self.check_range(address, len(blob))
        self.raw[address:address + len(blob)] = blob

    def load_unchecked(self, address: int, length: int) -> int:
        """Unsigned load with no bounds check — callers (the predecoded
        fast loop) guarantee ``[address, address+length)`` is in range."""
        return int.from_bytes(self.raw[address:address + length], "little")

    def store_unchecked(self, address: int, length: int,
                        value: int) -> None:
        """Store with no bounds check; masks the value like `store`."""
        self.raw[address:address + length] = \
            (value & ((1 << (length * 8)) - 1)).to_bytes(length, "little")


# -- fast-path fix-up helpers --------------------------------------------
#
# The generated superblock code computes effective addresses without the
# & 2^64-1 mask when the immediate is non-negative (the mask can only
# matter on wraparound) and reads/writes through struct codecs that raise
# on out-of-range offsets.  These helpers are the recovery path: re-mask
# the address, retry in-range wraps, and raise the byte-identical
# MemoryFault for genuine out-of-bounds accesses.

def fix_load(raw: bytearray, address: int, length: int,
             signed: bool) -> int:
    address &= _MASK64
    if address + length > len(raw):
        raise MemoryFault(
            f"access [{address:#x}, {address + length:#x}) outside "
            f"{len(raw):#x}-byte memory"
        )
    value = int.from_bytes(raw[address:address + length], "little")
    if signed:
        sign_bit = 1 << (length * 8 - 1)
        if value & sign_bit:
            value -= 1 << (length * 8)
    return value & _MASK64


def fix_store(raw: bytearray, address: int, length: int,
              value: int) -> None:
    address &= _MASK64
    if address + length > len(raw):
        raise MemoryFault(
            f"access [{address:#x}, {address + length:#x}) outside "
            f"{len(raw):#x}-byte memory"
        )
    raw[address:address + length] = \
        (value & ((1 << (length * 8)) - 1)).to_bytes(length, "little")
