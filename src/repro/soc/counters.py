"""Performance counters.

These are the observables of the SoC: total cycles and the event counts
the timing model charges for.  They are also, deliberately, the side
channel the paper's *dynamic-analysis* attacker reads — the attack model
in :mod:`repro.net.dynamic_attacker` profiles programs through exactly
this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class PerfCounters:
    cycles: int = 0
    instret: int = 0

    loads: int = 0
    stores: int = 0
    branches: int = 0
    branches_taken: int = 0
    jumps: int = 0
    muls: int = 0
    divs: int = 0

    icache_hits: int = 0
    icache_misses: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0

    load_use_stalls: int = 0
    flush_cycles: int = 0
    muldiv_stall_cycles: int = 0
    miss_stall_cycles: int = 0

    #: per-mnemonic execution histogram (attacker-visible profile)
    mix: dict = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instret if self.instret else 0.0

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "PerfCounters":
        """Rebuild counters from a :meth:`snapshot` dict (farm records);
        ``cpi`` is derived, unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in snapshot.items() if k in known})

    def snapshot(self) -> dict:
        """Plain-dict view (stable keys; used by reports and attackers)."""
        return {
            "cycles": self.cycles,
            "instret": self.instret,
            "cpi": round(self.cpi, 4),
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "branches_taken": self.branches_taken,
            "jumps": self.jumps,
            "muls": self.muls,
            "divs": self.divs,
            "icache_hits": self.icache_hits,
            "icache_misses": self.icache_misses,
            "dcache_hits": self.dcache_hits,
            "dcache_misses": self.dcache_misses,
            "load_use_stalls": self.load_use_stalls,
            "flush_cycles": self.flush_cycles,
            "muldiv_stall_cycles": self.muldiv_stall_cycles,
            "miss_stall_cycles": self.miss_stall_cycles,
        }
