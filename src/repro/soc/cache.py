"""Set-associative L1 cache model with LRU replacement.

Timing-only: the cache tracks which lines are resident to classify each
access as hit or miss; data always comes from the flat memory (a valid
simplification for a coherent single-core system with no DMA).

Default geometry matches Table I: 16 KiB, 4-way, 64-byte lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int = 16 * 1024
    ways: int = 4
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for field_name in ("size_bytes", "ways", "line_bytes"):
            value = getattr(self, field_name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"{field_name} must be a power of two")
        if self.size_bytes < self.ways * self.line_bytes:
            raise ConfigError("cache smaller than one set")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class Cache:
    """LRU set-associative cache; ``access()`` returns True on hit."""

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.n_sets - 1
        # Each set is a list of resident line numbers, most-recently-used
        # last.  Line numbers (not tags) keep membership checks one shift
        # away from the address; within a set the two are a bijection, so
        # hit/miss/LRU behaviour is unchanged.
        self._sets: list[list[int]] = [[] for _ in range(config.n_sets)]
        self.hits = 0
        self.misses = 0
        # One-entry fast path: repeated access to the same line (very
        # common for instruction fetch) skips the LRU bookkeeping.
        self._last_line: int | None = None
        # Per-set MRU line (None = empty set): the predecoded fast loop
        # inlines `mru[line & set_mask] == line` to classify the dominant
        # hit case without a method call.  Invariant: _mru[i] mirrors
        # _sets[i][-1].  An MRU re-touch's remove/append is an order
        # no-op, which is what makes the inline check state-exact.
        self._mru: list[int | None] = [None] * config.n_sets
        # Lines above this bound were computed from an unmasked address
        # and must be recomputed modulo 2^64 (the SoC tightens it to the
        # memory size).
        self._max_line = (1 << 58)

    def access(self, address: int) -> bool:
        line = address >> self._line_shift
        if line == self._last_line:
            self.hits += 1
            return True
        self._last_line = line
        index = line & self._set_mask
        ways = self._sets[index]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self._mru[index] = line
            self.hits += 1
            return True
        self.misses += 1
        ways.append(line)
        self._mru[index] = line
        if len(ways) > self.config.ways:
            ways.pop(0)
        return False

    def access_line(self, line: int) -> None:
        """Hot-loop variant: takes a precomputed line number and counts
        only misses — the fast interpreter derives hit totals from
        access counts (hits = accesses - misses), so counting hits here
        would be wasted work.  LRU state updates match :meth:`access`."""
        if line == self._last_line:
            return
        self._last_line = line
        index = line & self._set_mask
        ways = self._sets[index]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self._mru[index] = line
            return
        self.misses += 1
        ways.append(line)
        self._mru[index] = line
        if len(ways) > self.config.ways:
            ways.pop(0)

    def _slow(self, line: int, address: int) -> None:
        """Slow path behind the generated code's inline MRU check: the
        line missed both the same-line and MRU-of-set tests.  ``line``
        may come from an unmasked address; recompute it modulo 2^64
        before touching the sets.  Does NOT update ``_last_line`` — the
        generated code tracks that in a local."""
        if line > self._max_line:
            line = ((address & _MASK64) >> self._line_shift)
        index = line & self._set_mask
        ways = self._sets[index]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self._mru[index] = line
            return
        self.misses += 1
        ways.append(line)
        self._mru[index] = line
        if len(ways) > self.config.ways:
            ways.pop(0)

    def flush(self) -> None:
        """Invalidate every line (used between benchmark runs)."""
        for ways in self._sets:
            ways.clear()
        self._last_line = None
        mru = self._mru
        for i in range(len(mru)):
            mru[i] = None

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0
