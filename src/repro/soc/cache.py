"""Set-associative L1 cache model with LRU replacement.

Timing-only: the cache tracks which lines are resident to classify each
access as hit or miss; data always comes from the flat memory (a valid
simplification for a coherent single-core system with no DMA).

Default geometry matches Table I: 16 KiB, 4-way, 64-byte lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int = 16 * 1024
    ways: int = 4
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for field_name in ("size_bytes", "ways", "line_bytes"):
            value = getattr(self, field_name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"{field_name} must be a power of two")
        if self.size_bytes < self.ways * self.line_bytes:
            raise ConfigError("cache smaller than one set")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class Cache:
    """LRU set-associative cache; ``access()`` returns True on hit."""

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.n_sets - 1
        # Each set is a list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(config.n_sets)]
        self.hits = 0
        self.misses = 0
        # One-entry fast path: repeated access to the same line (very
        # common for instruction fetch) skips the LRU bookkeeping.
        self._last_line = -1

    def access(self, address: int) -> bool:
        line = address >> self._line_shift
        if line == self._last_line:
            self.hits += 1
            return True
        self._last_line = line
        index = line & self._set_mask
        tag = line >> (self._set_mask.bit_length())
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.config.ways:
            ways.pop(0)
        return False

    def flush(self) -> None:
        """Invalidate every line (used between benchmark runs)."""
        for ways in self._sets:
            ways.clear()
        self._last_line = -1

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0
