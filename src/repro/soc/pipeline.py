"""In-order pipeline timing model (Rocket-like 6-stage).

Rocket is a single-issue in-order pipeline; at a first order every
instruction retires in one cycle, plus well-understood stall sources.
This model charges:

=====================  ====================================================
base                   1 cycle per retired instruction
load-use hazard        +1 cycle when an instruction consumes the register a
                       load produced in the immediately preceding cycle
taken control flow     +2 cycles (fetch redirect through the frontend)
multiply               +3 extra cycles (iterative/pipelined mul unit)
divide                 +32 extra cycles (64-bit), +16 for the W forms
cache miss             +24 cycles per L1 miss (DRAM behind a thin L2-less
                       AXI port, as on the Zedboard prototype)
=====================  ====================================================

The absolute constants are Rocket-plausible rather than RTL-exact; Fig. 7
only depends on the *ratio* of HDE cycles to program cycles, and the
ablation benches sweep these constants to show the conclusions are not
sensitive to them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineModel:
    base_cpi: int = 1
    load_use_stall: int = 1
    flush_penalty: int = 2
    mul_latency: int = 3
    div_latency: int = 32
    div32_latency: int = 16
    miss_penalty: int = 24

    def validate(self) -> None:
        for name in ("base_cpi", "load_use_stall", "flush_penalty",
                     "mul_latency", "div_latency", "div32_latency",
                     "miss_penalty"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


#: The default model used by every experiment unless swept explicitly.
DEFAULT_PIPELINE = PipelineModel()
