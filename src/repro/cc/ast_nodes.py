"""MiniC abstract syntax tree.

Nodes carry their source line for diagnostics; semantic analysis annotates
expression nodes with ``ctype`` (their computed :class:`repro.cc.types.CType`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.types import CType


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# --- expressions ------------------------------------------------------------


@dataclass
class Expr(Node):
    ctype: CType | None = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Var(Expr):
    name: str = ""
    #: filled by sema: 'local' | 'param' | 'global'
    storage: str = field(default="", kw_only=True)


@dataclass
class Unary(Expr):
    op: str = ""              # '-' '~' '!' '*' '&'
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""              # arithmetic / comparison / logical
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Assign(Expr):
    target: Expr | None = None
    value: Expr | None = None
    op: str = ""              # '' for plain '=', else '+', '-', ...


@dataclass
class IncDec(Expr):
    target: Expr | None = None
    op: str = ""              # '++' or '--'
    prefix: bool = True


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


# --- statements -------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    var_type: CType | None = None
    init: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None      # VarDecl or ExprStmt or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --- top level --------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    ptype: CType | None = None


@dataclass
class FuncDef(Node):
    name: str = ""
    return_type: CType | None = None
    params: list[Param] = field(default_factory=list)
    body: Block | None = None


@dataclass
class GlobalVar(Node):
    name: str = ""
    var_type: CType | None = None
    #: int for scalars, list[int] for arrays, str for char-array strings
    init: int | list[int] | str | None = None


@dataclass
class TranslationUnit(Node):
    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
