"""AST -> IR lowering."""

from __future__ import annotations

from repro.cc import ast_nodes as ast
from repro.cc import ir
from repro.cc.types import CType
from repro.errors import SemanticError


class _FunctionContext:
    """Per-function lowering state."""

    def __init__(self, name: str) -> None:
        self.fn = ir.IRFunction(name=name)
        self.scopes: list[dict[str, tuple[str, CType]]] = [{}]
        self.break_labels: list[str] = []
        self.continue_labels: list[str] = []
        self._slot_counter = 0
        self._label_counter = 0

    def temp(self) -> int:
        self.fn.n_temps += 1
        return self.fn.n_temps - 1

    def label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def emit(self, instr: ir.IRInstr) -> None:
        self.fn.instrs.append(instr)

    def declare(self, name: str, ctype: CType, line: int) -> str:
        scope = self.scopes[-1]
        if name in scope:
            raise SemanticError(f"line {line}: redeclaration of {name!r}")
        self._slot_counter += 1
        slot = f"{name}.{self._slot_counter}"
        scope[name] = (slot, ctype)
        self.fn.locals[slot] = ctype.size
        return slot

    def lookup(self, name: str) -> tuple[str, CType] | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None


class IRGenerator:
    """Lower an analyzed translation unit to :class:`ir.IRModule`."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.module = ir.IRModule()
        self.global_types = {g.name: g.var_type for g in unit.globals}

    def generate(self) -> ir.IRModule:
        for func in self.unit.functions:
            self.module.functions.append(self._function(func))
        return self.module

    # -- functions -----------------------------------------------------------

    def _function(self, func: ast.FuncDef) -> ir.IRFunction:
        ctx = _FunctionContext(func.name)
        self._ctx = ctx
        for param in func.params:
            slot = ctx.declare(param.name, param.ptype, func.line)
            ctx.fn.params.append(slot)
            ctx.fn.param_sizes.append(param.ptype.size)
        self._block(func.body, new_scope=False)
        # Implicit return for void functions / fallthrough.
        ctx.emit(ir.Ret(None))
        return ctx.fn

    # -- statements ------------------------------------------------------------

    def _block(self, block: ast.Block, new_scope: bool = True) -> None:
        ctx = self._ctx
        if new_scope:
            ctx.scopes.append({})
        for stmt in block.statements:
            self._stmt(stmt)
        if new_scope:
            ctx.scopes.pop()

    def _stmt(self, stmt: ast.Stmt) -> None:
        ctx = self._ctx
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            slot = ctx.declare(stmt.name, stmt.var_type, stmt.line)
            if stmt.init is not None:
                value = self._rvalue(stmt.init)
                addr = ctx.temp()
                ctx.emit(ir.AddrLocal(addr, slot))
                ctx.emit(ir.Store(addr, value,
                                  min(stmt.var_type.size, 8)))
        elif isinstance(stmt, ast.ExprStmt):
            self._rvalue(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                ctx.emit(ir.Ret(None))
            else:
                ctx.emit(ir.Ret(self._rvalue(stmt.value)))
        elif isinstance(stmt, ast.Break):
            ctx.emit(ir.Jump(ctx.break_labels[-1]))
        elif isinstance(stmt, ast.Continue):
            ctx.emit(ir.Jump(ctx.continue_labels[-1]))
        else:
            raise SemanticError(f"unhandled stmt {type(stmt).__name__}")

    def _if(self, stmt: ast.If) -> None:
        ctx = self._ctx
        else_label = ctx.label("Lelse")
        end_label = ctx.label("Lend")
        cond = self._rvalue(stmt.cond)
        ctx.emit(ir.Branch(cond, else_label, when_true=False))
        self._stmt(stmt.then)
        if stmt.otherwise is not None:
            ctx.emit(ir.Jump(end_label))
            ctx.emit(ir.Label(else_label))
            self._stmt(stmt.otherwise)
            ctx.emit(ir.Label(end_label))
        else:
            ctx.emit(ir.Label(else_label))

    def _while(self, stmt: ast.While) -> None:
        ctx = self._ctx
        head = ctx.label("Lwhile")
        end = ctx.label("Lwend")
        ctx.emit(ir.Label(head))
        cond = self._rvalue(stmt.cond)
        ctx.emit(ir.Branch(cond, end, when_true=False))
        ctx.break_labels.append(end)
        ctx.continue_labels.append(head)
        self._stmt(stmt.body)
        ctx.break_labels.pop()
        ctx.continue_labels.pop()
        ctx.emit(ir.Jump(head))
        ctx.emit(ir.Label(end))

    def _for(self, stmt: ast.For) -> None:
        ctx = self._ctx
        ctx.scopes.append({})
        head = ctx.label("Lfor")
        step_label = ctx.label("Lstep")
        end = ctx.label("Lfend")
        if stmt.init is not None:
            self._stmt(stmt.init)
        ctx.emit(ir.Label(head))
        if stmt.cond is not None:
            cond = self._rvalue(stmt.cond)
            ctx.emit(ir.Branch(cond, end, when_true=False))
        ctx.break_labels.append(end)
        ctx.continue_labels.append(step_label)
        self._stmt(stmt.body)
        ctx.break_labels.pop()
        ctx.continue_labels.pop()
        ctx.emit(ir.Label(step_label))
        if stmt.step is not None:
            self._rvalue(stmt.step, want_value=False)
        ctx.emit(ir.Jump(head))
        ctx.emit(ir.Label(end))
        ctx.scopes.pop()

    # -- expressions ----------------------------------------------------------

    def _rvalue(self, expr: ast.Expr, want_value: bool = True) -> int:
        """Lower ``expr``; returns the temp holding its value.

        With ``want_value=False`` (expression statements) the value temp
        may be meaningless for void calls.
        """
        ctx = self._ctx
        if isinstance(expr, ast.IntLit):
            dst = ctx.temp()
            ctx.emit(ir.Const(dst, expr.value))
            return dst
        if isinstance(expr, ast.StrLit):
            symbol = self.module.intern_string(expr.value)
            dst = ctx.temp()
            ctx.emit(ir.AddrGlobal(dst, symbol))
            return dst
        if isinstance(expr, ast.Var):
            slot_info = ctx.lookup(expr.name)
            ctype = expr.ctype
            if ctype.kind == "array":
                # decay: the value of an array is its address
                return self._lvalue_address(expr)
            addr = self._lvalue_address(expr)
            dst = ctx.temp()
            ctx.emit(ir.Load(dst, addr, min(ctype.size, 8)))
            return dst
        if isinstance(expr, ast.Index):
            elem = expr.ctype
            addr = self._lvalue_address(expr)
            if elem.kind == "array":
                return addr  # multi-dim decay (not used by workloads)
            dst = ctx.temp()
            ctx.emit(ir.Load(dst, addr, min(elem.size, 8)))
            return dst
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr, want_value)
        if isinstance(expr, ast.IncDec):
            return self._incdec(expr, want_value)
        if isinstance(expr, ast.Call):
            args = [self._rvalue(a) for a in expr.args]
            if expr.ctype.kind == "void":
                ctx.emit(ir.Call(None, expr.name, args))
                if not want_value:
                    return -1
                dst = ctx.temp()
                ctx.emit(ir.Const(dst, 0))
                return dst
            dst = ctx.temp()
            ctx.emit(ir.Call(dst, expr.name, args))
            return dst
        raise SemanticError(f"unhandled expr {type(expr).__name__}")

    def _unary(self, expr: ast.Unary) -> int:
        ctx = self._ctx
        op = expr.op
        if op == "&":
            return self._lvalue_address(expr.operand)
        if op == "*":
            pointer = self._rvalue(expr.operand)
            ctype = expr.ctype
            dst = ctx.temp()
            ctx.emit(ir.Load(dst, pointer, min(ctype.size, 8)))
            return dst
        operand = self._rvalue(expr.operand)
        dst = ctx.temp()
        if op == "-":
            ctx.emit(ir.UnOp(dst, "neg", operand))
        elif op == "~":
            ctx.emit(ir.UnOp(dst, "not", operand))
        elif op == "!":
            ctx.emit(ir.UnOp(dst, "lnot", operand))
        else:
            raise SemanticError(f"unhandled unary {op}")
        return dst

    _CMP = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge",
            "==": "eq", "!=": "ne"}
    _ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
              "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}

    def _binary(self, expr: ast.Binary) -> int:
        ctx = self._ctx
        op = expr.op
        if op in ("&&", "||"):
            return self._logical(expr)
        left_type = expr.left.ctype.decay()
        right_type = expr.right.ctype.decay()
        a = self._rvalue(expr.left)
        b = self._rvalue(expr.right)
        dst = ctx.temp()
        if op in self._CMP:
            ctx.emit(ir.BinOp(dst, self._CMP[op], a, b))
            return dst
        ir_op = self._ARITH[op]
        # pointer arithmetic scaling
        if op in ("+", "-") and left_type.kind == "ptr" \
                and right_type.is_arithmetic:
            b = self._scale(b, left_type.base.size)
        elif op == "+" and right_type.kind == "ptr" \
                and left_type.is_arithmetic:
            a = self._scale(a, right_type.base.size)
        elif op == "-" and left_type.kind == "ptr" \
                and right_type.kind == "ptr":
            diff = ctx.temp()
            ctx.emit(ir.BinOp(diff, "sub", a, b))
            return self._unscale(diff, left_type.base.size)
        ctx.emit(ir.BinOp(dst, ir_op, a, b))
        return dst

    def _scale(self, temp: int, elem_size: int) -> int:
        if elem_size == 1:
            return temp
        ctx = self._ctx
        size = ctx.temp()
        ctx.emit(ir.Const(size, elem_size))
        scaled = ctx.temp()
        ctx.emit(ir.BinOp(scaled, "mul", temp, size))
        return scaled

    def _unscale(self, temp: int, elem_size: int) -> int:
        if elem_size == 1:
            return temp
        ctx = self._ctx
        size = ctx.temp()
        ctx.emit(ir.Const(size, elem_size))
        result = ctx.temp()
        ctx.emit(ir.BinOp(result, "div", temp, size))
        return result

    def _logical(self, expr: ast.Binary) -> int:
        ctx = self._ctx
        dst = ctx.temp()
        rhs_label = ctx.label("Llog")
        end_label = ctx.label("Llogend")
        a = self._rvalue(expr.left)
        if expr.op == "&&":
            ctx.emit(ir.Branch(a, rhs_label, when_true=True))
            ctx.emit(ir.Const(dst, 0))
        else:
            ctx.emit(ir.Branch(a, rhs_label, when_true=False))
            ctx.emit(ir.Const(dst, 1))
        ctx.emit(ir.Jump(end_label))
        ctx.emit(ir.Label(rhs_label))
        b = self._rvalue(expr.right)
        zero = ctx.temp()
        ctx.emit(ir.Const(zero, 0))
        ctx.emit(ir.BinOp(dst, "ne", b, zero))
        ctx.emit(ir.Label(end_label))
        return dst

    def _assign(self, expr: ast.Assign, want_value: bool) -> int:
        ctx = self._ctx
        target_type = expr.target.ctype
        size = min(target_type.size, 8)
        addr = self._lvalue_address(expr.target)
        if not expr.op:
            value = self._rvalue(expr.value)
            ctx.emit(ir.Store(addr, value, size))
            return value
        # compound: load, combine, store
        old = ctx.temp()
        ctx.emit(ir.Load(old, addr, size))
        rhs = self._rvalue(expr.value)
        if target_type.kind == "ptr" and expr.op in ("+", "-"):
            rhs = self._scale(rhs, target_type.base.size)
        new = ctx.temp()
        ctx.emit(ir.BinOp(new, self._ARITH[expr.op], old, rhs))
        ctx.emit(ir.Store(addr, new, size))
        return new

    def _incdec(self, expr: ast.IncDec, want_value: bool) -> int:
        ctx = self._ctx
        target_type = expr.target.ctype
        size = min(target_type.size, 8)
        addr = self._lvalue_address(expr.target)
        old = ctx.temp()
        ctx.emit(ir.Load(old, addr, size))
        delta = ctx.temp()
        step = target_type.base.size if target_type.kind == "ptr" else 1
        ctx.emit(ir.Const(delta, step))
        new = ctx.temp()
        op = "add" if expr.op == "++" else "sub"
        ctx.emit(ir.BinOp(new, op, old, delta))
        ctx.emit(ir.Store(addr, new, size))
        return new if expr.prefix else old

    def _lvalue_address(self, expr: ast.Expr) -> int:
        """Temp holding the address of an lvalue (or array base)."""
        ctx = self._ctx
        if isinstance(expr, ast.Var):
            slot_info = ctx.lookup(expr.name)
            dst = ctx.temp()
            if slot_info is not None:
                ctx.emit(ir.AddrLocal(dst, slot_info[0]))
            elif expr.name in self.global_types:
                ctx.emit(ir.AddrGlobal(dst, expr.name))
            else:
                raise SemanticError(
                    f"line {expr.line}: unknown variable {expr.name!r}")
            return dst
        if isinstance(expr, ast.Index):
            base_type = expr.base.ctype.decay()
            base = self._rvalue(expr.base)  # array decays to address
            index = self._rvalue(expr.index)
            scaled = self._scale(index, base_type.base.size)
            dst = ctx.temp()
            ctx.emit(ir.BinOp(dst, "add", base, scaled))
            return dst
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._rvalue(expr.operand)
        raise SemanticError(f"line {expr.line}: not an lvalue")


def generate(unit: ast.TranslationUnit) -> ir.IRModule:
    """Lower an analyzed unit to IR."""
    return IRGenerator(unit).generate()
