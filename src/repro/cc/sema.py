"""MiniC semantic analysis.

Resolves names, computes and annotates expression types, checks lvalues,
call signatures, loop placement of break/continue, and return types.
Arrays decay to pointers in rvalue positions; ``char`` is unsigned and
promotes to ``int`` in arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc import ast_nodes as ast
from repro.cc.types import CHAR, INT, VOID, CType, pointer_to
from repro.errors import SemanticError

#: Builtins implemented in assembly by the runtime (see repro.cc.runtime).
#: print_int/print_str are *library* functions written in MiniC and are
#: compiled together with every program, so they are not listed here.
BUILTINS: dict[str, tuple[CType, tuple[CType, ...]]] = {
    "print_char": (VOID, (INT,)),
    "exit": (VOID, (INT,)),
}


@dataclass
class FunctionInfo:
    name: str
    return_type: CType
    param_types: tuple[CType, ...]


@dataclass
class Scope:
    parent: "Scope | None" = None
    names: dict[str, CType] = field(default_factory=dict)

    def lookup(self, name: str) -> CType | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, name: str, ctype: CType, line: int) -> None:
        if name in self.names:
            raise SemanticError(f"line {line}: redeclaration of {name!r}")
        self.names[name] = ctype


class Analyzer:
    """One-pass semantic checker + annotator."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.globals: dict[str, CType] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._locals: Scope | None = None
        self._params: dict[str, CType] = {}
        self._loop_depth = 0
        self._return_type: CType = VOID

    def analyze(self) -> ast.TranslationUnit:
        for name, (ret, params) in BUILTINS.items():
            self.functions[name] = FunctionInfo(name, ret, params)
        for gvar in self.unit.globals:
            self._global(gvar)
        for func in self.unit.functions:
            self._declare_function(func)
        for func in self.unit.functions:
            self._function(func)
        return self.unit

    # -- declarations ------------------------------------------------------

    def _global(self, gvar: ast.GlobalVar) -> None:
        if gvar.name in self.globals or gvar.name in self.functions:
            raise SemanticError(
                f"line {gvar.line}: redefinition of {gvar.name!r}")
        if gvar.var_type.kind == "void":
            raise SemanticError(
                f"line {gvar.line}: variable {gvar.name!r} has type void")
        if isinstance(gvar.init, str):
            if not (gvar.var_type.kind == "array"
                    and gvar.var_type.base.kind == "char"):
                if gvar.var_type == pointer_to(CHAR):
                    pass  # char *s = "..." is fine
                else:
                    raise SemanticError(
                        f"line {gvar.line}: string initializer needs "
                        f"char[] or char*, got {gvar.var_type}")
            elif gvar.var_type.count < len(gvar.init) + 1:
                raise SemanticError(
                    f"line {gvar.line}: string initializer too long for "
                    f"{gvar.var_type}")
        if isinstance(gvar.init, list):
            if gvar.var_type.kind != "array":
                raise SemanticError(
                    f"line {gvar.line}: brace initializer on non-array")
            if gvar.var_type.count < len(gvar.init):
                raise SemanticError(
                    f"line {gvar.line}: too many initializers for "
                    f"{gvar.var_type}")
        if isinstance(gvar.init, int) and not gvar.var_type.is_scalar:
            raise SemanticError(
                f"line {gvar.line}: scalar initializer on {gvar.var_type}")
        self.globals[gvar.name] = gvar.var_type

    def _declare_function(self, func: ast.FuncDef) -> None:
        if func.name in self.functions:
            raise SemanticError(
                f"line {func.line}: redefinition of function {func.name!r}")
        if func.name in self.globals:
            raise SemanticError(
                f"line {func.line}: {func.name!r} already a global variable")
        seen = set()
        for param in func.params:
            if param.name in seen:
                raise SemanticError(
                    f"line {func.line}: duplicate parameter {param.name!r}")
            seen.add(param.name)
            if not param.ptype.is_scalar:
                raise SemanticError(
                    f"line {func.line}: parameter {param.name!r} must be "
                    "scalar")
        if len(func.params) > 8:
            raise SemanticError(
                f"line {func.line}: more than 8 parameters in {func.name!r}")
        self.functions[func.name] = FunctionInfo(
            func.name, func.return_type,
            tuple(p.ptype for p in func.params),
        )

    def _function(self, func: ast.FuncDef) -> None:
        self._locals = Scope()
        self._params = {}
        self._return_type = func.return_type
        for param in func.params:
            self._locals.declare(param.name, param.ptype, func.line)
            self._params[param.name] = param.ptype
        self._block(func.body, new_scope=False)
        self._locals = None

    # -- statements -----------------------------------------------------------

    def _block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self._locals = Scope(parent=self._locals)
        for stmt in block.statements:
            self._statement(stmt)
        if new_scope:
            self._locals = self._locals.parent

    def _statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.var_type.kind == "void":
                raise SemanticError(
                    f"line {stmt.line}: variable {stmt.name!r} has type void")
            self._locals.declare(stmt.name, stmt.var_type, stmt.line)
            if stmt.init is not None:
                init_type = self._expr(stmt.init)
                self._check_assignable(stmt.var_type, init_type, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._condition(stmt.cond)
            self._statement(stmt.then)
            if stmt.otherwise is not None:
                self._statement(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._condition(stmt.cond)
            self._loop_depth += 1
            self._statement(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self._locals = Scope(parent=self._locals)
            if stmt.init is not None:
                self._statement(stmt.init)
            if stmt.cond is not None:
                self._condition(stmt.cond)
            if stmt.step is not None:
                self._expr(stmt.step)
            self._loop_depth += 1
            self._statement(stmt.body)
            self._loop_depth -= 1
            self._locals = self._locals.parent
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if self._return_type.kind != "void":
                    raise SemanticError(
                        f"line {stmt.line}: return without a value in a "
                        f"function returning {self._return_type}")
            else:
                value_type = self._expr(stmt.value)
                if self._return_type.kind == "void":
                    raise SemanticError(
                        f"line {stmt.line}: returning a value from a void "
                        "function")
                self._check_assignable(self._return_type, value_type,
                                       stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(stmt, ast.Break) else \
                    "continue"
                raise SemanticError(
                    f"line {stmt.line}: {keyword} outside a loop")
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}")

    def _condition(self, expr: ast.Expr) -> None:
        ctype = self._expr(expr)
        if not ctype.decay().is_scalar:
            raise SemanticError(
                f"line {expr.line}: condition is not scalar ({ctype})")

    # -- expressions ------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> CType:
        ctype = self._expr_inner(expr)
        expr.ctype = ctype
        return ctype

    def _expr_inner(self, expr: ast.Expr) -> CType:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.StrLit):
            return pointer_to(CHAR)
        if isinstance(expr, ast.Var):
            ctype = self._locals.lookup(expr.name) if self._locals else None
            if ctype is not None:
                # Parameters are spilled to local slots in the prologue, so
                # codegen treats them uniformly as locals.
                expr.storage = "local"
                return ctype
            if expr.name in self.globals:
                expr.storage = "global"
                return self.globals[expr.name]
            raise SemanticError(
                f"line {expr.line}: undeclared identifier {expr.name!r}")
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.IncDec):
            target_type = self._expr(expr.target)
            self._check_lvalue(expr.target)
            if not target_type.is_scalar:
                raise SemanticError(
                    f"line {expr.line}: {expr.op} needs a scalar")
            return target_type
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Index):
            base_type = self._expr(expr.base).decay()
            index_type = self._expr(expr.index).decay()
            if base_type.kind != "ptr":
                raise SemanticError(
                    f"line {expr.line}: indexing non-pointer ({base_type})")
            if not index_type.is_arithmetic:
                raise SemanticError(
                    f"line {expr.line}: array index is not arithmetic")
            return base_type.base
        raise SemanticError(f"unhandled expression {type(expr).__name__}")

    def _unary(self, expr: ast.Unary) -> CType:
        operand_type = self._expr(expr.operand)
        op = expr.op
        if op == "&":
            self._check_lvalue(expr.operand)
            return pointer_to(operand_type)
        decayed = operand_type.decay()
        if op == "*":
            if decayed.kind != "ptr":
                raise SemanticError(
                    f"line {expr.line}: dereferencing non-pointer "
                    f"({operand_type})")
            return decayed.base
        if op in ("-", "~"):
            if not decayed.is_arithmetic:
                raise SemanticError(
                    f"line {expr.line}: unary {op} needs arithmetic type")
            return INT
        if op == "!":
            if not decayed.is_scalar:
                raise SemanticError(
                    f"line {expr.line}: unary ! needs a scalar")
            return INT
        raise SemanticError(f"line {expr.line}: unknown unary {op!r}")

    def _binary(self, expr: ast.Binary) -> CType:
        left = self._expr(expr.left).decay()
        right = self._expr(expr.right).decay()
        op = expr.op
        if op in ("&&", "||"):
            if not (left.is_scalar and right.is_scalar):
                raise SemanticError(
                    f"line {expr.line}: {op} needs scalar operands")
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left.kind == "ptr" and right.kind == "ptr":
                return INT
            if left.is_arithmetic and right.is_arithmetic:
                return INT
            if {left.kind, right.kind} == {"ptr", "int"}:
                return INT  # pointer vs integer compare (0 for NULL)
            raise SemanticError(
                f"line {expr.line}: cannot compare {left} with {right}")
        if op == "+":
            if left.kind == "ptr" and right.is_arithmetic:
                return left
            if right.kind == "ptr" and left.is_arithmetic:
                return right
        if op == "-":
            if left.kind == "ptr" and right.is_arithmetic:
                return left
            if left.kind == "ptr" and right.kind == "ptr":
                return INT
        if left.is_arithmetic and right.is_arithmetic:
            return INT
        raise SemanticError(
            f"line {expr.line}: invalid operands to {op!r} "
            f"({left} and {right})")

    def _assign(self, expr: ast.Assign) -> CType:
        target_type = self._expr(expr.target)
        self._check_lvalue(expr.target)
        value_type = self._expr(expr.value)
        if expr.op:
            # compound assignment: target op= value
            if target_type.kind == "ptr" and expr.op in ("+", "-") \
                    and value_type.decay().is_arithmetic:
                return target_type
            if not (target_type.is_arithmetic
                    and value_type.decay().is_arithmetic):
                raise SemanticError(
                    f"line {expr.line}: invalid compound assignment")
            return target_type
        self._check_assignable(target_type, value_type, expr.line)
        return target_type

    def _call(self, expr: ast.Call) -> CType:
        info = self.functions.get(expr.name)
        if info is None:
            raise SemanticError(
                f"line {expr.line}: call to undefined function "
                f"{expr.name!r}")
        if len(expr.args) != len(info.param_types):
            raise SemanticError(
                f"line {expr.line}: {expr.name} expects "
                f"{len(info.param_types)} arguments, got {len(expr.args)}")
        for arg, expected in zip(expr.args, info.param_types):
            actual = self._expr(arg)
            self._check_assignable(expected, actual, expr.line)
        return info.return_type

    # -- helpers ---------------------------------------------------------------

    def _check_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Var):
            if expr.ctype is not None and expr.ctype.kind == "array":
                raise SemanticError(
                    f"line {expr.line}: array {expr.name!r} is not "
                    "assignable")
            return
        if isinstance(expr, ast.Index):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise SemanticError(f"line {expr.line}: expression is not an lvalue")

    @staticmethod
    def _check_assignable(target: CType, value: CType, line: int) -> None:
        value = value.decay()
        if target.kind == "array":
            raise SemanticError(f"line {line}: cannot assign to an array")
        if target.is_arithmetic and value.is_arithmetic:
            return
        if target.kind == "ptr" and value.kind == "ptr":
            return  # permissive pointer conversion (MiniC, not ISO C)
        if target.kind == "ptr" and value.kind == "int":
            return  # integer-to-pointer (NULL and address literals)
        if target.kind == "int" and value.kind == "ptr":
            return  # pointer-to-integer
        raise SemanticError(
            f"line {line}: cannot assign {value} to {target}")


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Run semantic analysis, annotating the tree in place."""
    return Analyzer(unit).analyze()
