"""MiniC: the reproduction's stand-in for the paper's LLVM/Clang toolchain.

The paper measures compile time of an LLVM 11 pipeline with encryption and
signing bolted on (§IV.A).  LLVM itself is not reproducible in pure
Python, but the *measurement* only needs a real compiler: a front end, an
IR with optimization passes, and a RISC-V back end whose wall-clock time
can be compared with and without the ERIC packaging stage.  MiniC is that
compiler.

The language: a C subset sufficient for the MiBench-counterpart workloads
— 64-bit ``int``, unsigned ``char``, pointers, 1-D arrays, functions with
recursion, the usual statements and operators, string literals, and four
builtins (``print_int``, ``print_char``, ``print_str``, ``exit``).

Pipeline: lexer -> parser -> semantic analysis -> three-address IR ->
optimization passes (constant folding, copy propagation, strength
reduction, dead-code elimination, jump threading) -> RV64 code generation
-> :mod:`repro.asm` assembly.

Public entry point: :func:`repro.cc.driver.compile_source`.
"""

from repro.cc.driver import CompileResult, compile_source

__all__ = ["CompileResult", "compile_source"]
