"""The MiniC compiler driver: source text -> :class:`repro.asm.Program`.

This is the "baseline compiler" of Fig. 6: the ERIC driver
(:mod:`repro.core.compiler_driver`) wraps it and adds the signature +
encryption + packaging stage, and the figure compares the two wall-clock
times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.assembler import assemble
from repro.asm.program import Program
from repro.cc import ast_nodes as ast
from repro.cc.codegen import generate_assembly
from repro.cc.irgen import generate as generate_ir
from repro.cc.opt import optimize_module
from repro.cc.parser import parse
from repro.cc.runtime import LIBRARY_SOURCE, RUNTIME_ASM
from repro.cc.sema import analyze
from repro.errors import CompileError


@dataclass
class CompileResult:
    program: Program
    asm_text: str
    name: str
    #: coarse per-stage wall times in seconds (filled by the ERIC driver's
    #: measurement wrapper when timing is requested)
    stage_seconds: dict = field(default_factory=dict)


def compile_source(source: str, name: str = "program",
                   optimize: bool = True, compress: bool = False,
                   text_base: int = 0x10000,
                   include_library: bool = True) -> CompileResult:
    """Compile MiniC ``source`` to a loadable :class:`Program`.

    Args:
        source: MiniC translation unit (must define ``main``).
        optimize: run the IR pass pipeline (-O1 vs -O0).
        compress: emit RVC compressed instructions where possible
            (the paper's RV64GC configuration).
        include_library: compile the MiniC runtime library (print_int,
            print_str) into the program; disable only for tests that
            provide their own.
    """
    full_source = source + ("\n" + LIBRARY_SOURCE if include_library else "")
    unit = analyze(parse(full_source))
    if not any(fn.name == "main" for fn in unit.functions):
        raise CompileError(f"{name}: no main() defined")

    module = generate_ir(unit)
    if optimize:
        optimize_module(module)

    lines = [RUNTIME_ASM]
    lines.extend(generate_assembly(module))
    lines.append(_data_section(unit, module))
    asm_text = "\n".join(lines)
    program = assemble(asm_text, name=name, text_base=text_base,
                       compress=compress)
    return CompileResult(program=program, asm_text=asm_text, name=name)


def _data_section(unit: ast.TranslationUnit, module) -> str:
    """Emit globals and interned strings."""
    out = [".data"]
    for gvar in unit.globals:
        ctype = gvar.var_type
        if ctype.size >= 8:
            out.append(".align 8")
        out.append(f"{gvar.name}:")
        out.append(_global_payload(gvar, module))
    for text, symbol in module.strings.items():
        out.append(f"{symbol}:")
        out.append(f'.asciz "{_escape(text)}"')
    return "\n".join(out)


def _global_payload(gvar: ast.GlobalVar, module) -> str:
    ctype = gvar.var_type
    init = gvar.init
    if ctype.kind in ("int", "ptr"):
        if isinstance(init, str):
            # char *s = "..." — point at the interned string literal.
            return f".dword {module.intern_string(init)}"
        return f".dword {init or 0}"
    if ctype.kind == "char":
        return f".byte {init or 0}"
    if ctype.kind == "array":
        element = ctype.base
        if isinstance(init, str):
            payload = init.encode("latin-1") + b"\x00"
            padded = payload.ljust(ctype.count, b"\x00")
            values = ", ".join(str(b) for b in padded)
            return f".byte {values}"
        values = list(init) if isinstance(init, list) else []
        values += [0] * (ctype.count - len(values))
        directive = ".dword" if element.kind in ("int", "ptr") else ".byte"
        if element.kind == "char":
            values = [v & 0xFF for v in values]
        joined = ", ".join(str(v) for v in values)
        return f"{directive} {joined}"
    raise CompileError(f"cannot emit global of type {ctype}")


def _escape(text: str) -> str:
    out = []
    for ch in text:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "\0":
            out.append("\\0")
        else:
            out.append(ch)
    return "".join(out)
