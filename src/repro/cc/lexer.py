"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset({
    "int", "char", "void", "if", "else", "while", "for",
    "return", "break", "continue",
})

# Multi-character operators first (maximal munch).
_OPERATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",",
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
            "\\": "\\", "'": "'", '"': '"'}


@dataclass(frozen=True)
class Token:
    kind: str    # 'ident' | 'keyword' | 'int' | 'string' | operator text | 'eof'
    text: str
    value: int | str | None
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r}, line={self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC source; raises :class:`LexError` with location."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    length = len(source)

    def error(message: str) -> LexError:
        return LexError(f"line {line}:{col}: {message}")

    while i < length:
        ch = source[i]
        # whitespace
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # comments
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for j in range(i, end + 2):
                if source[j] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line, col))
            col += i - start
            continue
        # numbers
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < length and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                if i == start + 2:
                    raise error("malformed hex literal")
                value = int(source[start:i], 16)
            else:
                while i < length and source[i].isdigit():
                    i += 1
                value = int(source[start:i])
            tokens.append(Token("int", source[start:i], value, line, col))
            col += i - start
            continue
        # char literal
        if ch == "'":
            start_col = col
            i += 1
            if i >= length:
                raise error("unterminated char literal")
            if source[i] == "\\":
                if i + 1 >= length or source[i + 1] not in _ESCAPES:
                    raise error("bad escape in char literal")
                value = ord(_ESCAPES[source[i + 1]])
                i += 2
                consumed = 4
            else:
                value = ord(source[i])
                i += 1
                consumed = 3
            if i >= length or source[i] != "'":
                raise error("unterminated char literal")
            i += 1
            tokens.append(Token("int", f"'{chr(value)}'", value, line,
                                start_col))
            col += consumed
            continue
        # string literal
        if ch == '"':
            start_col = col
            i += 1
            chars: list[str] = []
            while i < length and source[i] != '"':
                if source[i] == "\n":
                    raise error("newline in string literal")
                if source[i] == "\\":
                    if i + 1 >= length or source[i + 1] not in _ESCAPES:
                        raise error("bad escape in string literal")
                    chars.append(_ESCAPES[source[i + 1]])
                    i += 2
                    col += 2
                    continue
                chars.append(source[i])
                i += 1
                col += 1
            if i >= length:
                raise error("unterminated string literal")
            i += 1
            text = "".join(chars)
            tokens.append(Token("string", text, text, line, start_col))
            col += 2
            continue
        # operators / punctuation
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, None, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", None, line, col))
    return tokens
