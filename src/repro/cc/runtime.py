"""MiniC runtime: startup code, asm builtins, and the MiniC-level library.

The runtime has three layers:

* ``RUNTIME_ASM`` — ``_start`` (calls ``main``, exits with its return
  value) and the two syscall shims ``print_char`` and ``exit``.
* ``LIBRARY_SOURCE`` — ``print_int`` and ``print_str`` written *in MiniC*
  and compiled together with every program (they exercise the compiler on
  every build, and their cost is honestly attributed in every measurement).
"""

RUNTIME_ASM = """
.text
_start:
    call main
    li a7, 93
    ecall

print_char:
    li a7, 1
    ecall
    ret

exit:
    li a7, 93
    ecall
"""

LIBRARY_SOURCE = """
void print_str(char *s) {
    int i = 0;
    while (s[i]) {
        print_char(s[i]);
        i = i + 1;
    }
}

void print_int(int x) {
    char buf[32];
    int i = 0;
    int v = x;
    if (v < 0) {
        print_char('-');
    } else {
        v = -v;
    }
    while (v != 0) {
        int d = v % 10;
        buf[i] = '0' - d;
        i = i + 1;
        v = v / 10;
    }
    if (i == 0) {
        print_char('0');
        return;
    }
    while (i > 0) {
        i = i - 1;
        print_char(buf[i]);
    }
}
"""

#: Functions defined in assembly; the MiniC library/user code must not
#: redefine them (sema registers them as builtins).
ASM_BUILTINS = ("print_char", "exit")
