"""IR optimization passes.

Conservative by design: every pass checks definition counts before
assuming a temp is constant or copy-propagatable (short-circuit join temps
are multiply defined).  The pass pipeline:

1. constant folding + algebraic identities (+0, *1, *2^k -> shift)
2. copy propagation
3. branch folding on constant conditions
4. dead-code elimination (pure instructions with unused results)
5. jump threading / unreachable-code / unused-label cleanup

``optimize()`` runs the pipeline to a (bounded) fixpoint.  The MiniC test
suite asserts -O0 and -O1 produce identical program output across every
workload, which is the soundness check for everything here.
"""

from __future__ import annotations

from repro.cc import ir

_MASK64 = (1 << 64) - 1
_FOLD_LIMIT = 6


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def _eval_binop(op: str, a: int, b: int) -> int | None:
    """Fold a binary op over signed-64 semantics; None if undefined."""
    sa, sb = _signed(a), _signed(b)
    if op == "add":
        return sa + sb
    if op == "sub":
        return sa - sb
    if op == "mul":
        return sa * sb
    if op == "div":
        if sb == 0:
            return None  # leave for runtime semantics
        q = abs(sa) // abs(sb)
        return -q if (sa < 0) != (sb < 0) else q
    if op == "rem":
        if sb == 0:
            return None
        q = abs(sa) // abs(sb)
        q = -q if (sa < 0) != (sb < 0) else q
        return sa - q * sb
    if op == "and":
        return sa & sb
    if op == "or":
        return sa | sb
    if op == "xor":
        return sa ^ sb
    if op == "shl":
        return sa << (sb & 63)
    if op == "shr":
        return sa >> (sb & 63)
    if op == "slt":
        return int(sa < sb)
    if op == "sle":
        return int(sa <= sb)
    if op == "sgt":
        return int(sa > sb)
    if op == "sge":
        return int(sa >= sb)
    if op == "eq":
        return int(sa == sb)
    if op == "ne":
        return int(sa != sb)
    return None


def _eval_unop(op: str, a: int) -> int:
    sa = _signed(a)
    if op == "neg":
        return -sa
    if op == "not":
        return ~sa
    return int(sa == 0)  # lnot


def constant_fold(fn: ir.IRFunction) -> bool:
    """Fold constant expressions; returns True if anything changed."""
    defs = fn.def_counts()
    consts: dict[int, int] = {}
    changed = False
    new_instrs: list[ir.IRInstr] = []
    for instr in fn.instrs:
        if isinstance(instr, ir.Const) and defs.get(instr.dst) == 1:
            consts[instr.dst] = instr.value
            new_instrs.append(instr)
            continue
        if isinstance(instr, ir.BinOp):
            a, b = consts.get(instr.a), consts.get(instr.b)
            if a is not None and b is not None:
                value = _eval_binop(instr.op, a, b)
                if value is not None:
                    new_instrs.append(ir.Const(instr.dst, _signed(value)))
                    if defs.get(instr.dst) == 1:
                        consts[instr.dst] = _signed(value)
                    changed = True
                    continue
            folded = _algebraic(instr, a, b)
            if folded is not None:
                new_instrs.append(folded)
                changed = True
                continue
        if isinstance(instr, ir.UnOp):
            a = consts.get(instr.a)
            if a is not None:
                value = _signed(_eval_unop(instr.op, a))
                new_instrs.append(ir.Const(instr.dst, value))
                if defs.get(instr.dst) == 1:
                    consts[instr.dst] = value
                changed = True
                continue
        if isinstance(instr, ir.Branch):
            cond = consts.get(instr.cond)
            if cond is not None:
                taken = (cond != 0) == instr.when_true
                new_instrs.append(ir.Jump(instr.label) if taken
                                  else _NOP)
                changed = True
                continue
        new_instrs.append(instr)
    fn.instrs = [i for i in new_instrs if i is not _NOP]
    return changed


_NOP = ir.IRInstr()


def _algebraic(instr: ir.BinOp, a: int | None, b: int | None):
    """x+0, x-0, x*1, x*0, x*2^k, x<<0 style identities."""
    if instr.op == "add":
        if b == 0:
            return ir.Copy(instr.dst, instr.a)
        if a == 0:
            return ir.Copy(instr.dst, instr.b)
    if instr.op == "sub" and b == 0:
        return ir.Copy(instr.dst, instr.a)
    if instr.op == "mul":
        if b == 1:
            return ir.Copy(instr.dst, instr.a)
        if a == 1:
            return ir.Copy(instr.dst, instr.b)
        if b is not None and b > 1 and b & (b - 1) == 0:
            # x * 2^k -> x << k; the shift-amount temp rides in `b` as a
            # fresh Const the caller will have folded already -- but we
            # cannot mint temps here, so only rewrite when the power of
            # two is already in a temp: reuse instr.b with op change is
            # wrong. Skip; strength reduction happens in codegen instead.
            return None
    if instr.op in ("shl", "shr") and b == 0:
        return ir.Copy(instr.dst, instr.a)
    if instr.op == "and" and (a == 0 or b == 0):
        return ir.Const(instr.dst, 0)
    return None


def copy_propagate(fn: ir.IRFunction) -> bool:
    defs = fn.def_counts()
    mapping: dict[int, int] = {}
    for instr in fn.instrs:
        if isinstance(instr, ir.Copy) and defs.get(instr.dst) == 1 \
                and defs.get(instr.src, 0) <= 1:
            root = mapping.get(instr.src, instr.src)
            mapping[instr.dst] = root
    if not mapping:
        return False
    for instr in fn.instrs:
        ir.replace_uses(instr, mapping)
    return True


def eliminate_dead_code(fn: ir.IRFunction) -> bool:
    used: set[int] = set()
    for instr in fn.instrs:
        used.update(ir.instruction_uses(instr))
    changed = False
    kept: list[ir.IRInstr] = []
    for instr in fn.instrs:
        if isinstance(instr, (ir.Const, ir.BinOp, ir.UnOp, ir.Copy,
                              ir.AddrLocal, ir.AddrGlobal, ir.Load)):
            if instr.dst not in used:
                changed = True
                continue
        kept.append(instr)
    fn.instrs = kept
    return changed


def cleanup_jumps(fn: ir.IRFunction) -> bool:
    changed = False
    # remove unreachable instructions after Jump/Ret
    kept: list[ir.IRInstr] = []
    reachable = True
    for instr in fn.instrs:
        if isinstance(instr, ir.Label):
            reachable = True
        if not reachable:
            changed = True
            continue
        kept.append(instr)
        if isinstance(instr, (ir.Jump, ir.Ret)):
            reachable = False
    # remove jumps to the immediately following label
    result: list[ir.IRInstr] = []
    for i, instr in enumerate(kept):
        if isinstance(instr, ir.Jump):
            nxt = _next_real(kept, i + 1)
            if isinstance(nxt, ir.Label) and nxt.name == instr.label:
                changed = True
                continue
        result.append(instr)
    # drop labels nothing jumps to
    targets = {instr.label for instr in result
               if isinstance(instr, (ir.Jump, ir.Branch))}
    final = [instr for instr in result
             if not (isinstance(instr, ir.Label)
                     and instr.name not in targets)]
    if len(final) != len(result):
        changed = True
    fn.instrs = final
    return changed


def _next_real(instrs: list[ir.IRInstr], start: int) -> ir.IRInstr | None:
    return instrs[start] if start < len(instrs) else None


def optimize(fn: ir.IRFunction) -> ir.IRFunction:
    """Run the pass pipeline to a bounded fixpoint."""
    for _ in range(_FOLD_LIMIT):
        changed = constant_fold(fn)
        changed |= copy_propagate(fn)
        changed |= eliminate_dead_code(fn)
        changed |= cleanup_jumps(fn)
        if not changed:
            break
    return fn


def optimize_module(module: ir.IRModule) -> ir.IRModule:
    for fn in module.functions:
        optimize(fn)
    return module
