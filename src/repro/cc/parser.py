"""MiniC recursive-descent parser with precedence climbing."""

from __future__ import annotations

from repro.cc import ast_nodes as ast
from repro.cc.lexer import Token, tokenize
from repro.cc.types import CHAR, INT, VOID, CType, array_of, pointer_to
from repro.errors import ParseError

# binary operator -> (precedence, ir-op is resolved later)
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<",
                    ">>=": ">>"}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        if not self._check(kind, text):
            token = self._current
            wanted = text or kind
            raise ParseError(
                f"line {token.line}: expected {wanted!r}, "
                f"got {token.text or token.kind!r}"
            )
        return self._advance()

    # -- top level ----------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        while not self._check("eof"):
            self._declaration(unit)
        return unit

    def _declaration(self, unit: ast.TranslationUnit) -> None:
        line = self._current.line
        base = self._type_specifier()
        ctype, name = self._declarator(base)
        if self._check("("):
            unit.functions.append(self._function(ctype, name, line))
            return
        unit.globals.append(self._global_var(ctype, name, line))
        while self._accept(","):
            ctype2, name2 = self._declarator(base)
            unit.globals.append(self._global_var(ctype2, name2, line,
                                                 standalone=False))
        self._expect(";")

    def _type_specifier(self) -> CType:
        token = self._current
        if token.kind == "keyword" and token.text in ("int", "char", "void"):
            self._advance()
            return {"int": INT, "char": CHAR, "void": VOID}[token.text]
        raise ParseError(f"line {token.line}: expected a type, "
                         f"got {token.text!r}")

    def _declarator(self, base: CType) -> tuple[CType, str]:
        ctype = base
        while self._accept("*"):
            ctype = pointer_to(ctype)
        name = self._expect("ident").text
        if self._accept("["):
            if self._check("]"):
                # size inferred from the initializer ("char s[] = ...");
                # count 0 is the "unsized" marker fixed up by the caller.
                self._expect("]")
                return CType("array", ctype, 0), name
            size_token = self._expect("int")
            self._expect("]")
            return array_of(ctype, size_token.value), name
        return ctype, name

    def _global_var(self, ctype: CType, name: str, line: int,
                    standalone: bool = True) -> ast.GlobalVar:
        init: int | list[int] | str | None = None
        if self._accept("="):
            init = self._global_initializer(ctype, line)
        if ctype.kind == "array" and ctype.count == 0:
            # infer size from the initializer
            if isinstance(init, str):
                ctype = array_of(ctype.base, len(init) + 1)
            elif isinstance(init, list):
                ctype = array_of(ctype.base, len(init))
            else:
                raise ParseError(
                    f"line {line}: unsized array {name!r} needs an "
                    "initializer")
        return ast.GlobalVar(name=name, var_type=ctype, init=init, line=line)

    def _global_initializer(self, ctype: CType,
                            line: int) -> int | list[int] | str:
        if self._check("string"):
            return self._advance().value
        if self._accept("{"):
            values = []
            if not self._check("}"):
                values.append(self._const_expr())
                while self._accept(","):
                    if self._check("}"):
                        break
                    values.append(self._const_expr())
            self._expect("}")
            return values
        return self._const_expr()

    def _const_expr(self) -> int:
        """Constant expression for global initializers (fold +,-,* only)."""
        value = self._const_term()
        while self._check("+") or self._check("-"):
            op = self._advance().text
            rhs = self._const_term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _const_term(self) -> int:
        negative = False
        while self._accept("-"):
            negative = not negative
        token = self._expect("int")
        return -token.value if negative else token.value

    def _function(self, return_type: CType, name: str,
                  line: int) -> ast.FuncDef:
        self._expect("(")
        params: list[ast.Param] = []
        if not self._check(")"):
            if self._check("keyword", "void") \
                    and self._tokens[self._pos + 1].kind == ")":
                self._advance()
            else:
                params.append(self._param())
                while self._accept(","):
                    params.append(self._param())
        self._expect(")")
        body = self._block()
        return ast.FuncDef(name=name, return_type=return_type,
                           params=params, body=body, line=line)

    def _param(self) -> ast.Param:
        line = self._current.line
        base = self._type_specifier()
        ctype = base
        while self._accept("*"):
            ctype = pointer_to(ctype)
        name = self._expect("ident").text
        if self._accept("["):
            self._accept("int")
            self._expect("]")
            ctype = pointer_to(ctype)  # array parameters decay
        return ast.Param(name=name, ptype=ctype, line=line)

    # -- statements -----------------------------------------------------------

    def _block(self) -> ast.Block:
        start = self._expect("{")
        statements: list[ast.Stmt] = []
        while not self._check("}"):
            statements.append(self._statement())
        self._expect("}")
        return ast.Block(statements=statements, line=start.line)

    def _statement(self) -> ast.Stmt:
        token = self._current
        if token.kind == "{":
            return self._block()
        if token.kind == "keyword":
            if token.text in ("int", "char"):
                return self._local_decl()
            if token.text == "if":
                return self._if()
            if token.text == "while":
                return self._while()
            if token.text == "for":
                return self._for()
            if token.text == "return":
                self._advance()
                value = None if self._check(";") else self._expression()
                self._expect(";")
                return ast.Return(value=value, line=token.line)
            if token.text == "break":
                self._advance()
                self._expect(";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self._advance()
                self._expect(";")
                return ast.Continue(line=token.line)
        if self._accept(";"):
            return ast.Block(statements=[], line=token.line)
        expr = self._expression()
        self._expect(";")
        return ast.ExprStmt(expr=expr, line=token.line)

    def _local_decl(self) -> ast.Stmt:
        line = self._current.line
        base = self._type_specifier()
        decls: list[ast.Stmt] = []
        while True:
            ctype, name = self._declarator(base)
            init = None
            if self._accept("="):
                init = self._expression()
            if ctype.kind == "array" and ctype.count == 0:
                raise ParseError(
                    f"line {line}: local array {name!r} needs an explicit "
                    "size")
            decls.append(ast.VarDecl(name=name, var_type=ctype, init=init,
                                     line=line))
            if not self._accept(","):
                break
        self._expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(statements=decls, line=line)

    def _if(self) -> ast.If:
        token = self._expect("keyword", "if")
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        then = self._statement()
        otherwise = None
        if self._accept("keyword", "else"):
            otherwise = self._statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise,
                      line=token.line)

    def _while(self) -> ast.While:
        token = self._expect("keyword", "while")
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        return ast.While(cond=cond, body=self._statement(), line=token.line)

    def _for(self) -> ast.For:
        token = self._expect("keyword", "for")
        self._expect("(")
        init: ast.Stmt | None = None
        if not self._check(";"):
            if self._check("keyword", "int") or self._check("keyword", "char"):
                init = self._local_decl()
            else:
                init = ast.ExprStmt(expr=self._expression(), line=token.line)
                self._expect(";")
        else:
            self._expect(";")
        cond = None if self._check(";") else self._expression()
        self._expect(";")
        step = None if self._check(")") else self._expression()
        self._expect(")")
        return ast.For(init=init, cond=cond, step=step,
                       body=self._statement(), line=token.line)

    # -- expressions ------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._assignment()

    def _assignment(self) -> ast.Expr:
        left = self._binary(1)
        token = self._current
        if token.kind == "=":
            self._advance()
            value = self._assignment()
            return ast.Assign(target=left, value=value, line=token.line)
        if token.kind in _COMPOUND_ASSIGN:
            self._advance()
            value = self._assignment()
            return ast.Assign(target=left, value=value,
                              op=_COMPOUND_ASSIGN[token.kind],
                              line=token.line)
        return left

    def _binary(self, min_precedence: int) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._current
            precedence = _BINARY_PRECEDENCE.get(token.kind)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._binary(precedence + 1)
            left = ast.Binary(op=token.kind, left=left, right=right,
                              line=token.line)

    def _unary(self) -> ast.Expr:
        token = self._current
        if token.kind in ("-", "~", "!", "*", "&"):
            self._advance()
            operand = self._unary()
            return ast.Unary(op=token.kind, operand=operand, line=token.line)
        if token.kind == "+":
            self._advance()
            return self._unary()
        if token.kind in ("++", "--"):
            self._advance()
            target = self._unary()
            return ast.IncDec(target=target, op=token.kind, prefix=True,
                              line=token.line)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            token = self._current
            if token.kind == "[":
                self._advance()
                index = self._expression()
                self._expect("]")
                expr = ast.Index(base=expr, index=index, line=token.line)
            elif token.kind in ("++", "--"):
                self._advance()
                expr = ast.IncDec(target=expr, op=token.kind, prefix=False,
                                  line=token.line)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        token = self._current
        if token.kind == "int":
            self._advance()
            return ast.IntLit(value=token.value, line=token.line)
        if token.kind == "string":
            self._advance()
            return ast.StrLit(value=token.value, line=token.line)
        if token.kind == "ident":
            self._advance()
            if self._check("("):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(")"):
                    args.append(self._expression())
                    while self._accept(","):
                        args.append(self._expression())
                self._expect(")")
                return ast.Call(name=token.text, args=args, line=token.line)
            return ast.Var(name=token.text, line=token.line)
        if token.kind == "(":
            self._advance()
            expr = self._expression()
            self._expect(")")
            return expr
        raise ParseError(
            f"line {token.line}: unexpected token {token.text or token.kind!r}"
        )


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source text into a :class:`TranslationUnit`."""
    return Parser(tokenize(source)).parse()
