"""Three-address intermediate representation.

Temps are integers; named storage (locals, params, arrays) lives in
explicit stack slots addressed via :class:`AddrLocal`, and globals via
:class:`AddrGlobal`.  The IR is *almost* SSA: temps are written once by
construction, except for the join temps of short-circuit logical
operators — optimization passes therefore check definition counts before
assuming anything.

Comparison ops produce 0/1.  ``shr`` is arithmetic (C ``>>`` on our signed
64-bit int); division/remainder have RISC-V (= C) truncating semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

BINARY_OPS = frozenset({
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "shr",
    "slt", "sle", "sgt", "sge", "eq", "ne",
})

UNARY_OPS = frozenset({"neg", "not", "lnot"})


@dataclass
class IRInstr:
    pass


@dataclass
class Const(IRInstr):
    dst: int
    value: int


@dataclass
class BinOp(IRInstr):
    dst: int
    op: str
    a: int
    b: int


@dataclass
class UnOp(IRInstr):
    dst: int
    op: str
    a: int


@dataclass
class Load(IRInstr):
    dst: int
    addr: int
    size: int          # 1 (unsigned char) or 8 (int/pointer)


@dataclass
class Store(IRInstr):
    addr: int
    src: int
    size: int


@dataclass
class AddrLocal(IRInstr):
    dst: int
    slot: str


@dataclass
class AddrGlobal(IRInstr):
    dst: int
    symbol: str


@dataclass
class Copy(IRInstr):
    dst: int
    src: int


@dataclass
class Call(IRInstr):
    dst: int | None
    name: str
    args: list[int]


@dataclass
class Label(IRInstr):
    name: str


@dataclass
class Jump(IRInstr):
    label: str


@dataclass
class Branch(IRInstr):
    cond: int
    label: str
    when_true: bool    # jump if cond != 0 (True) or == 0 (False)


@dataclass
class Ret(IRInstr):
    src: int | None


@dataclass
class IRFunction:
    name: str
    params: list[str] = field(default_factory=list)   # slot names, in order
    param_sizes: list[int] = field(default_factory=list)
    instrs: list[IRInstr] = field(default_factory=list)
    #: slot name -> byte size (scalars 1/8; arrays their full size)
    locals: dict[str, int] = field(default_factory=dict)
    n_temps: int = 0

    def def_counts(self) -> dict[int, int]:
        """Number of definitions per temp (non-1 means join temp)."""
        counts: dict[int, int] = {}
        for instr in self.instrs:
            dst = getattr(instr, "dst", None)
            if isinstance(dst, int):
                counts[dst] = counts.get(dst, 0) + 1
        return counts


@dataclass
class IRModule:
    functions: list[IRFunction] = field(default_factory=list)
    #: string literal text -> data symbol
    strings: dict[str, str] = field(default_factory=dict)

    def intern_string(self, text: str) -> str:
        symbol = self.strings.get(text)
        if symbol is None:
            symbol = f"__str{len(self.strings)}"
            self.strings[text] = symbol
        return symbol


def instruction_uses(instr: IRInstr) -> list[int]:
    """Temps read by ``instr``."""
    if isinstance(instr, BinOp):
        return [instr.a, instr.b]
    if isinstance(instr, UnOp):
        return [instr.a]
    if isinstance(instr, Load):
        return [instr.addr]
    if isinstance(instr, Store):
        return [instr.addr, instr.src]
    if isinstance(instr, Copy):
        return [instr.src]
    if isinstance(instr, Call):
        return list(instr.args)
    if isinstance(instr, Branch):
        return [instr.cond]
    if isinstance(instr, Ret):
        return [] if instr.src is None else [instr.src]
    return []


def replace_uses(instr: IRInstr, mapping: dict[int, int]) -> None:
    """Rewrite temp uses in place through ``mapping`` (dst left alone)."""
    if isinstance(instr, BinOp):
        instr.a = mapping.get(instr.a, instr.a)
        instr.b = mapping.get(instr.b, instr.b)
    elif isinstance(instr, UnOp):
        instr.a = mapping.get(instr.a, instr.a)
    elif isinstance(instr, Load):
        instr.addr = mapping.get(instr.addr, instr.addr)
    elif isinstance(instr, Store):
        instr.addr = mapping.get(instr.addr, instr.addr)
        instr.src = mapping.get(instr.src, instr.src)
    elif isinstance(instr, Copy):
        instr.src = mapping.get(instr.src, instr.src)
    elif isinstance(instr, Call):
        instr.args = [mapping.get(a, a) for a in instr.args]
    elif isinstance(instr, Branch):
        instr.cond = mapping.get(instr.cond, instr.cond)
    elif isinstance(instr, Ret) and instr.src is not None:
        instr.src = mapping.get(instr.src, instr.src)
