"""MiniC type system: int (i64), unsigned char, void, pointers, arrays."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError


@dataclass(frozen=True)
class CType:
    kind: str                 # 'int' | 'char' | 'void' | 'ptr' | 'array'
    base: "CType | None" = None
    count: int = 0            # array element count

    @property
    def size(self) -> int:
        if self.kind == "int":
            return 8
        if self.kind == "char":
            return 1
        if self.kind == "ptr":
            return 8
        if self.kind == "array":
            return self.base.size * self.count
        raise SemanticError(f"type {self} has no size")

    @property
    def is_scalar(self) -> bool:
        return self.kind in ("int", "char", "ptr")

    @property
    def is_arithmetic(self) -> bool:
        return self.kind in ("int", "char")

    def decay(self) -> "CType":
        """Array-to-pointer decay."""
        if self.kind == "array":
            return CType("ptr", self.base)
        return self

    def __str__(self) -> str:
        if self.kind == "ptr":
            return f"{self.base}*"
        if self.kind == "array":
            return f"{self.base}[{self.count}]"
        return self.kind


INT = CType("int")
CHAR = CType("char")
VOID = CType("void")


def pointer_to(base: CType) -> CType:
    return CType("ptr", base)


def array_of(base: CType, count: int) -> CType:
    if count <= 0:
        raise SemanticError(f"array size must be positive, got {count}")
    return CType("array", base, count)
