"""IR -> RV64 assembly code generation.

Strategy: a "spill-everything" backend.  Every temp gets a stack slot
(slots are reused via a linear-scan over live ranges), operands are staged
through ``t0``/``t1`` and results stored back.  Simple, predictable and
easy to verify — correctness is carried by the IR passes and the tests,
not by register-allocation cleverness.  ``t6`` is reserved as the
large-offset address scratch.

Conditional branches are always emitted as an inverted short branch over
an unconditional ``j`` so that IR labels can be arbitrarily far away
(RISC-V conditional branches reach only +-4 KiB).

Live-range safety: a slot freed at a temp's textually last use could be
clobbered and then re-read along a loop back edge, so ranges are extended
over every backward jump that crosses them before slots are assigned.
"""

from __future__ import annotations

from repro.cc import ir
from repro.errors import CompileError

WORD = 8


class FunctionCodegen:
    def __init__(self, fn: ir.IRFunction) -> None:
        self.fn = fn
        self.lines: list[str] = []

    # -- live ranges and slot assignment ------------------------------------

    def _live_ranges(self) -> dict[int, tuple[int, int]]:
        first: dict[int, int] = {}
        last: dict[int, int] = {}
        labels: dict[str, int] = {}
        for idx, instr in enumerate(self.fn.instrs):
            if isinstance(instr, ir.Label):
                labels[instr.name] = idx
            dst = getattr(instr, "dst", None)
            if isinstance(dst, int):
                first.setdefault(dst, idx)
                last[dst] = idx
            for temp in ir.instruction_uses(instr):
                first.setdefault(temp, idx)
                last[temp] = idx

        # Extend ranges across backward edges: if a back edge at j targets
        # label i (i < j), any range intersecting [i, j] must live to j.
        back_edges = []
        for idx, instr in enumerate(self.fn.instrs):
            target = None
            if isinstance(instr, ir.Jump):
                target = labels.get(instr.label)
            elif isinstance(instr, ir.Branch):
                target = labels.get(instr.label)
            if target is not None and target < idx:
                back_edges.append((target, idx))
        changed = True
        while changed:
            changed = False
            for target, source in back_edges:
                for temp in first:
                    if first[temp] <= source and last[temp] >= target \
                            and last[temp] < source:
                        last[temp] = source
                        changed = True
        return {t: (first[t], last[t]) for t in first}

    def _assign_slots(self) -> tuple[dict[int, int], int]:
        """Map temps to frame offsets; returns (mapping, spill bytes)."""
        ranges = self._live_ranges()
        order = sorted(ranges, key=lambda t: ranges[t][0])
        free: list[int] = []
        active: list[tuple[int, int]] = []  # (end, slot_index)
        slots: dict[int, int] = {}
        n_slots = 0
        for temp in order:
            start, end = ranges[temp]
            # expire finished ranges
            still_active = []
            for active_end, slot in active:
                if active_end < start:
                    free.append(slot)
                else:
                    still_active.append((active_end, slot))
            active = still_active
            if free:
                slot = free.pop()
            else:
                slot = n_slots
                n_slots += 1
            slots[temp] = slot
            active.append((end, slot))
        return ({t: s * WORD for t, s in slots.items()}, n_slots * WORD)

    # -- frame layout ----------------------------------------------------------

    def generate(self) -> list[str]:
        fn = self.fn
        temp_offsets, spill_bytes = self._assign_slots()

        local_offsets: dict[str, int] = {}
        cursor = spill_bytes
        for slot, size in fn.locals.items():
            aligned = (size + WORD - 1) // WORD * WORD
            local_offsets[slot] = cursor
            cursor += aligned
        frame = cursor + WORD  # +8 for saved ra
        frame = (frame + 15) // 16 * 16
        ra_offset = frame - WORD

        self._temp_offsets = temp_offsets
        self._local_offsets = local_offsets
        self._frame = frame

        out = self.lines
        out.append(f"{fn.name}:")
        self._adjust_sp(-frame)
        self._sd("ra", ra_offset)
        for index, slot in enumerate(fn.params):
            size = fn.param_sizes[index]
            self._store_reg(f"a{index}", local_offsets[slot], size)

        for instr in fn.instrs:
            self._instr(instr)

        out.append(f".L_{fn.name}_epilogue:")
        self._ld("ra", ra_offset)
        self._adjust_sp(frame)
        out.append("  ret")
        return out

    # -- emission helpers ------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append(f"  {text}")

    def _adjust_sp(self, delta: int) -> None:
        if -2048 <= delta <= 2047:
            self._emit(f"addi sp, sp, {delta}")
        else:
            self._emit(f"li t6, {delta}")
            self._emit("add sp, sp, t6")

    def _mem(self, op: str, reg: str, offset: int) -> None:
        """op reg, offset(sp) with large-offset fallback through t6."""
        if -2048 <= offset <= 2047:
            self._emit(f"{op} {reg}, {offset}(sp)")
        else:
            self._emit(f"li t6, {offset}")
            self._emit("add t6, sp, t6")
            self._emit(f"{op} {reg}, 0(t6)")

    def _ld(self, reg: str, offset: int) -> None:
        self._mem("ld", reg, offset)

    def _sd(self, reg: str, offset: int) -> None:
        self._mem("sd", reg, offset)

    def _load_temp(self, reg: str, temp: int) -> None:
        self._ld(reg, self._temp_offsets[temp])

    def _store_temp(self, reg: str, temp: int) -> None:
        self._sd(reg, self._temp_offsets[temp])

    def _store_reg(self, reg: str, offset: int, size: int) -> None:
        op = {1: "sb", 8: "sd"}[size]
        self._mem(op, reg, offset)

    def _label(self, name: str) -> str:
        return f".L_{self.fn.name}_{name}"

    # -- per-instruction emission ---------------------------------------------

    def _instr(self, instr: ir.IRInstr) -> None:
        if isinstance(instr, ir.Const):
            self._emit(f"li t0, {instr.value}")
            self._store_temp("t0", instr.dst)
        elif isinstance(instr, ir.BinOp):
            self._binop(instr)
        elif isinstance(instr, ir.UnOp):
            self._load_temp("t0", instr.a)
            if instr.op == "neg":
                self._emit("sub t0, zero, t0")
            elif instr.op == "not":
                self._emit("xori t0, t0, -1")
            else:  # lnot
                self._emit("seqz t0, t0")
            self._store_temp("t0", instr.dst)
        elif isinstance(instr, ir.Load):
            self._load_temp("t0", instr.addr)
            op = {1: "lbu", 8: "ld"}[instr.size]
            self._emit(f"{op} t0, 0(t0)")
            self._store_temp("t0", instr.dst)
        elif isinstance(instr, ir.Store):
            self._load_temp("t0", instr.addr)
            self._load_temp("t1", instr.src)
            op = {1: "sb", 8: "sd"}[instr.size]
            self._emit(f"{op} t1, 0(t0)")
        elif isinstance(instr, ir.AddrLocal):
            offset = self._local_offsets[instr.slot]
            if -2048 <= offset <= 2047:
                self._emit(f"addi t0, sp, {offset}")
            else:
                self._emit(f"li t0, {offset}")
                self._emit("add t0, sp, t0")
            self._store_temp("t0", instr.dst)
        elif isinstance(instr, ir.AddrGlobal):
            self._emit(f"la t0, {instr.symbol}")
            self._store_temp("t0", instr.dst)
        elif isinstance(instr, ir.Copy):
            self._load_temp("t0", instr.src)
            self._store_temp("t0", instr.dst)
        elif isinstance(instr, ir.Call):
            if len(instr.args) > 8:
                raise CompileError(
                    f"{self.fn.name}: call with more than 8 arguments")
            for index, arg in enumerate(instr.args):
                self._load_temp(f"a{index}", arg)
            self._emit(f"call {instr.name}")
            if instr.dst is not None:
                self._store_temp("a0", instr.dst)
        elif isinstance(instr, ir.Label):
            self.lines.append(f"{self._label(instr.name)}:")
        elif isinstance(instr, ir.Jump):
            self._emit(f"j {self._label(instr.label)}")
        elif isinstance(instr, ir.Branch):
            self._load_temp("t0", instr.cond)
            skip = f"{self._label(instr.label)}_s{len(self.lines)}"
            inverted = "beqz" if instr.when_true else "bnez"
            self._emit(f"{inverted} t0, {skip}")
            self._emit(f"j {self._label(instr.label)}")
            self.lines.append(f"{skip}:")
        elif isinstance(instr, ir.Ret):
            if instr.src is not None:
                self._load_temp("a0", instr.src)
            self._emit(f"j .L_{self.fn.name}_epilogue")
        else:
            raise CompileError(f"unhandled IR instruction {instr!r}")

    _BIN_ASM = {
        "add": "add", "sub": "sub", "mul": "mul", "div": "div",
        "rem": "rem", "and": "and", "or": "or", "xor": "xor",
        "shl": "sll", "shr": "sra",
    }

    def _binop(self, instr: ir.BinOp) -> None:
        self._load_temp("t0", instr.a)
        self._load_temp("t1", instr.b)
        op = instr.op
        if op in self._BIN_ASM:
            self._emit(f"{self._BIN_ASM[op]} t0, t0, t1")
        elif op == "slt":
            self._emit("slt t0, t0, t1")
        elif op == "sgt":
            self._emit("slt t0, t1, t0")
        elif op == "sle":
            self._emit("slt t0, t1, t0")
            self._emit("xori t0, t0, 1")
        elif op == "sge":
            self._emit("slt t0, t0, t1")
            self._emit("xori t0, t0, 1")
        elif op == "eq":
            self._emit("sub t0, t0, t1")
            self._emit("seqz t0, t0")
        elif op == "ne":
            self._emit("sub t0, t0, t1")
            self._emit("snez t0, t0")
        else:
            raise CompileError(f"unhandled binop {op}")
        self._store_temp("t0", instr.dst)


def generate_assembly(module: ir.IRModule) -> list[str]:
    """Emit assembly lines for every function in the module."""
    lines: list[str] = [".text"]
    for fn in module.functions:
        lines.extend(FunctionCodegen(fn).generate())
    return lines
