#!/usr/bin/env python3
"""Partial and field-level encryption (paper §III.1's three methods).

ERIC's interface lets the programmer pick what to hide:

* FULL     — every instruction is ciphertext;
* PARTIAL  — a chosen fraction of instructions (random here, as in the
  paper's evaluation), e.g. to protect one critical kernel;
* FIELD    — only selected bit-fields, e.g. "the pointer values of the
  instructions that make memory accesses", leaving opcodes plaintext so
  the binary does not even look encrypted.

The example packages the same program three ways and shows what a static
attacker's disassembler makes of each, plus the size cost.

Run:  python examples/partial_encryption.py
"""

from repro import Device, EncryptionMode, EricCompiler, EricConfig
from repro.core.interface import describe
from repro.net.static_attacker import analyze_blob

SOURCE = """
int key_schedule[16];

void expand_key(int seed) {
    for (int i = 0; i < 16; i++) {
        seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
        key_schedule[i] = seed;
    }
}

int main() {
    expand_key(42);
    int acc = 0;
    for (int i = 0; i < 16; i++) { acc ^= key_schedule[i]; }
    print_int(acc);
    print_char('\\n');
    return 0;
}
"""

CONFIGS = [
    EricConfig(mode=EncryptionMode.FULL),
    EricConfig(mode=EncryptionMode.PARTIAL, partial_fraction=0.4),
    EricConfig(mode=EncryptionMode.FIELD,
               field_classes=("imm", "rs1", "rs2", "rd")),
]


def main() -> None:
    device = Device(device_seed=77)
    key = device.enrollment_key()

    for config in CONFIGS:
        compiler = EricCompiler(config)
        result = compiler.compile_and_package(SOURCE, key, name="kernel")
        report = analyze_blob(result.package.enc_text)
        outcome = device.load_and_run(result.package_bytes)

        print(describe(config))
        print(f"  package size        : {result.package_size} B "
              f"({100 * result.size_increase_fraction:+.2f}% vs plain)")
        print(f"  encrypted slots     : "
              f"{result.encrypted.enc_map.encrypted_count}"
              f"/{result.encrypted.enc_map.count}")
        print(f"  attacker decode rate: "
              f"{report.valid_decode_fraction:.1%}")
        print(f"  attacker verdict    : "
              f"{'looks like code' if report.looks_like_code else 'noise'}")
        print(f"  device output       : {outcome.run.stdout.strip()}")
        print()

    print("note FIELD mode: high decode rate (opcodes are plaintext, so "
          "it still *looks* like code)\nwhile the operands an attacker "
          "needs — pointers, offsets, registers — are garbled.")


if __name__ == "__main__":
    main()
