#!/usr/bin/env python3
"""Inside the arbiter PUF (paper Fig. 1 and §II.B).

Shows the building blocks ERIC's keys rest on: challenge->response
behaviour, per-device uniqueness, noise and majority voting, the standard
quality metrics, and a stable key readout via the PUF Key Generator.

Run:  python examples/puf_anatomy.py
"""

from repro.puf import (
    ArbiterPuf,
    Environment,
    PufArray,
    PufKeyGenerator,
    inter_chip_uniqueness,
    intra_chip_reliability,
    uniformity,
)

CHALLENGES = list(range(256))


def main() -> None:
    print("1) one 8-stage arbiter PUF: 5 challenges, 5 responses")
    puf = ArbiterPuf(n_stages=8, seed=1)
    for challenge in (0b00000000, 0b00001111, 0b10101010, 0b11110000,
                      0b11111111):
        delta = puf.delay_difference(challenge)
        print(f"   challenge {challenge:08b} -> response "
              f"{puf.evaluate(challenge)}   (delay margin {delta:+.2f})")

    print("\n2) the same challenge on five different dies:")
    bits = [ArbiterPuf(n_stages=8, seed=s).evaluate(0b10101010)
            for s in range(2, 7)]
    print(f"   responses: {bits}  (process variation = identity)")

    print("\n3) quality metrics over 256 challenges, 10 dies:")
    population = [ArbiterPuf(n_stages=8, seed=100 + s) for s in range(10)]
    print(f"   uniformity (die 0)  : "
          f"{uniformity(population[0], CHALLENGES):.3f}  (ideal 0.5)")
    print(f"   uniqueness          : "
          f"{inter_chip_uniqueness(population, CHALLENGES):.3f}  "
          "(ideal 0.5)")
    print(f"   reliability (die 0) : "
          f"{intra_chip_reliability(population[0], CHALLENGES):.3f}  "
          "(ideal 1.0)")

    print("\n4) a harsh environment flips marginal bits; "
          "the PKG's screening + voting hold the key steady:")
    array = PufArray(width=32, n_stages=8, device_seed=42)
    pkg = PufKeyGenerator(array, key_bits=32, votes=11)
    hot = Environment(temperature_c=95.0, voltage=0.95)
    nominal_key = pkg.generate().key
    hot_key = pkg.generate(hot).key
    print(f"   key @ 25C/1.00V : {nominal_key.hex()}")
    print(f"   key @ 95C/0.95V : {hot_key.hex()}   "
          f"({'stable' if hot_key == nominal_key else 'DIFFERS'})")
    print(f"   readout cost    : {pkg.cycle_cost()} cycles "
          "(charged to the HDE)")


if __name__ == "__main__":
    main()
