"""Protection policies end to end: declare, sweep, read the frontier.

Two policies compete against the unprotected reference row:

* ``light`` — encrypt a quarter of the program's instruction slots;
* ``heavy`` — encrypt everything under the SHA-256-CTR cipher *and*
  insert opaque predicates (always-true branch guards over junk
  blocks) at 10% of instruction sites.

Both are plain JSON (the ``docs/policy.md`` dialect); the same objects
drop into an ``eric sweep``/``eric frontier`` spec's ``policies`` axis
unchanged.  The frontier table at the end prices each policy: cycles
and bytes paid vs attacker resistance gained.

Run with::

    PYTHONPATH=src python examples/protection_policies.py
"""

from repro.core.compiler_driver import EricCompiler
from repro.eval.frontier import frontier_matrix, frontier_report
from repro.farm import SimulationFarm
from repro.policy import policy_from_dict

LIGHT = policy_from_dict({
    "name": "light",
    "encrypt": [{"region": {"kind": "program"}, "fraction": 0.25}],
})

HEAVY = policy_from_dict({
    "name": "heavy",
    "cipher": "xor-sha256ctr",
    "encrypt": [{"region": {"kind": "program"}, "fraction": 1.0}],
    "obfuscate": [{"region": {"kind": "program"},
                   "density": 0.1, "junk": 3}],
})


def main() -> None:
    print("== the policies ==")
    for policy in (LIGHT, HEAVY):
        print(f"  {policy.describe()}")

    # What does the heavy policy's obfuscation pass actually do to a
    # program?  Compile one workload through it and count.
    from repro.workloads import get_workload
    workload = get_workload("crc32")
    plain = EricCompiler().prepare(workload.source, name="crc32")
    guarded = EricCompiler(policy=HEAVY).prepare(workload.source,
                                                 name="crc32")
    print("\n== heavy policy vs plain compile (crc32) ==")
    print(f"  instructions : {plain.program.instruction_count} -> "
          f"{guarded.program.instruction_count}")
    print(f"  text bytes   : {len(plain.program.text)} -> "
          f"{len(guarded.program.text)}")
    print(f"  enc slots    : {plain.enc_map.encrypted_count} -> "
          f"{guarded.enc_map.encrypted_count}")

    # Sweep 3 policy rows x 2 workloads through the ordinary farm.  No
    # store here so the example is self-contained; pass
    # store=ResultStore(...) (or use `eric frontier`) and the second
    # run costs zero simulations.
    print("\n== sweeping 3 policies x 2 workloads ==")
    matrix = frontier_matrix([None, LIGHT, HEAVY],
                             workloads=("crc32", "bitcount"))
    report = SimulationFarm().run(matrix)
    report.require_ok()
    print(report.summary())

    print()
    print(frontier_report(report).render())
    print("\nReading the table: 'heavy' buys full-entropy ciphertext "
          "and a worse\nlinear-sweep decode rate, and pays for it in "
          "cycles; 'light' is nearly\nfree but leaves most of the text "
          "readable.  Every cell is a\ndeterministic function of the "
          "job keys — re-rendering is byte-stable.")


if __name__ == "__main__":
    main()
