#!/usr/bin/env python3
"""Observability walkthrough: trace a sharded sweep end to end.

Runs a 2-program matrix through the distributed farm coordinator with
tracing on, then plays the operator role: render the merged waterfall
(`eric trace`), dump and render the metrics registry (`eric metrics`),
and let the doctor check the trace for orphans and crashed requests.
Every span in the waterfall — including the ones written by the worker
subprocesses into their own shard stores — belongs to one connected
tree.

Run:  python examples/tracing_walkthrough.py
"""

import pathlib
import sys
import tempfile

if True:  # allow running straight from a checkout
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.farm import FarmCoordinator, JobMatrix, ResultStore
from repro.obs import (METRICS, Tracer, build_trees, diagnose_trace,
                       read_trace, render_snapshot, render_traces)

HELLO = 'int main() { print_int(41); print_char(10); return 0; }\n'
COUNTDOWN = """
int main() {
    for (int i = 3; i > 0; i--) { print_int(i); print_char(' '); }
    print_char('\\n');
    return 0;
}
"""


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="eric-trace-"))
    store = ResultStore(workdir / "farm")

    # A tracer rooted at the store directory: the coordinator opens the
    # root span, writes its context into each shard.json, and merges
    # the workers' trace files back after their stores merge.
    coordinator = FarmCoordinator(store, shards=2,
                                  tracer=Tracer(store.root))
    matrix = JobMatrix(programs=(("hello", HELLO),
                                 ("countdown", COUNTDOWN)))
    report = coordinator.run(matrix)
    report.require_ok()
    print(report.summary())
    print(report.profile_summary())

    # -- eric trace: the merged waterfall ------------------------------
    print("\n=== eric trace ===")
    print(render_traces(store.root))

    spans, _ = read_trace(store.root)
    (tree,) = build_trees(spans.values())
    assert tree.connected, "shard spans must reconnect after the merge"
    names = sorted({span.name for span in tree.spans})
    print(f"\none connected tree, span kinds: {', '.join(names)}")

    # -- eric metrics: the process-wide registry -----------------------
    print("\n=== eric metrics ===")
    METRICS.dump(store.root)
    print(render_snapshot(METRICS.snapshot()))

    # -- eric doctor --trace: crash forensics --------------------------
    print("=== eric doctor --trace ===")
    print(diagnose_trace(store.root).describe())


if __name__ == "__main__":
    main()
