#!/usr/bin/env python3
"""Two-way authentication (paper Fig. 2) demonstrated adversarially.

ERIC's guarantee is symmetric:

* the *program* only runs on the hardware it was packaged for, and
* the *hardware* only runs programs packaged for it by a trusted source.

This example shows all four quadrants: the right device running the right
package, a clone device failing, a tampered package failing, and a
re-keyed (different epoch) device failing.

Run:  python examples/two_way_authentication.py
"""

from repro import (
    Device,
    DeviceRegistry,
    EricCompiler,
    PackageFormatError,
    ValidationError,
)
from repro.net.channel import BitFlipper, UntrustedChannel

SOURCE = """
int main() {
    print_str("payload executed!\\n");
    return 0;
}
"""


def attempt(label: str, action) -> None:
    try:
        outcome = action()
        print(f"  [RUNS   ] {label}: {outcome.run.stdout.strip()!r}")
    except (ValidationError, PackageFormatError) as exc:
        print(f"  [BLOCKED] {label}: {exc}")


def main() -> None:
    registry = DeviceRegistry()
    target = Device(device_seed=1001)
    registry.enroll(target)

    compiler = EricCompiler()
    package = compiler.compile_and_package(
        SOURCE, registry.handshake(target.device_id), name="payload")
    print(f"packaged {package.package_size} bytes for {target.device_id}\n")

    print("1) the target device runs its package:")
    attempt("target device", lambda: target.load_and_run(
        package.package_bytes))

    print("\n2) an attacker's device (different silicon) cannot:")
    impostor = Device(device_seed=2002)
    attempt("impostor device", lambda: impostor.load_and_run(
        package.package_bytes))

    print("\n3) soft errors / malicious bit flips in transit are caught:")
    channel = UntrustedChannel([BitFlipper(flips=2, seed=5)])
    damaged = channel.transfer(package.package_bytes)
    attempt("tampered package", lambda: target.load_and_run(damaged))

    print("\n4) the same silicon after re-keying (new KMU epoch) refuses"
          " old packages:")
    rekeyed = Device(device_seed=1001, epoch=b"epoch-1")
    attempt("re-keyed device", lambda: rekeyed.load_and_run(
        package.package_bytes))


if __name__ == "__main__":
    main()
