#!/usr/bin/env python3
"""Async fleet serving: many deployments, one farm/store pair.

``DeploymentSession.deploy_fleet`` serves one fleet at a time, and
every fleet measures its own jobs — run ten overlapping fleets and the
same workload simulates ten times.  The asyncio service layer removes
both redundancies:

* every concurrent fleet shares **one artifact cache** — concurrent
  ``prepare()`` calls for the same program coalesce onto a single
  build (``AsyncSingleFlight``), so N fleets pay one compile+sign;
* every concurrent fleet shares **one farm/store pair** — measurement
  requests from all in-flight fleets land in a shared batch queue,
  are deduplicated by farm job key, simulate exactly once, and fan
  back to every awaiting fleet.

This example serves three overlapping fleets concurrently and prints
the scheduler's accounting: 8 job requests, 6 unique jobs, 6
simulations, 2 compiles — then a warm rerun that simulates nothing at
all.

Run:  python examples/async_fleets.py
"""

import asyncio
import pathlib
import sys
import tempfile

if True:  # allow running straight from a checkout
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.farm import ResultStore
from repro.service.scheduler import FleetScheduler, load_fleet_specs
from repro.service.telemetry import StagePrinter

TELEMETRY_FW = """
int main() {
    print_str("telemetry firmware\\n");
    return 0;
}
"""

SENSOR_FW = """
int main() {
    print_str("sensor firmware\\n");
    return 0;
}
"""

#: Three fleets, defined in the same JSON dialect ``eric serve
#: --fleets`` reads.  They overlap: the telemetry firmware on device
#: seed 2 is wanted by all three.
FLEETS = {"fleets": [
    {"name": "eu-rollout",
     "programs": [{"name": "telemetry", "source": TELEMETRY_FW}],
     "device_seeds": [1, 2]},
    {"name": "us-rollout",
     "programs": [{"name": "telemetry", "source": TELEMETRY_FW}],
     "device_seeds": [2, 3]},
    {"name": "lab-bench",
     "programs": [{"name": "telemetry", "source": TELEMETRY_FW},
                  {"name": "sensor", "source": SENSOR_FW}],
     "device_seeds": [2, 4]},
]}


async def serve(store_dir: str) -> None:
    scheduler = FleetScheduler(store=ResultStore(store_dir))
    # narrate the spans: fleet begin/end, batches, the serve itself
    scheduler.on_event(StagePrinter(stages="scheduler."))
    try:
        report = await scheduler.serve(load_fleet_specs(FLEETS))
        print()
        for fleet in report.fleets:
            print(fleet.summary())
        print(report.summary())
        # the multiplexing guarantee, in numbers:
        assert report.executed == report.unique_jobs
        assert report.cache_stats.compiles == 2  # telemetry + sensor
    finally:
        await scheduler.aclose()


async def resume(store_dir: str) -> None:
    scheduler = FleetScheduler(store=ResultStore(store_dir))
    try:
        report = await scheduler.serve(load_fleet_specs(FLEETS))
        print()
        print("warm rerun:", report.summary())
        assert report.executed == 0          # nothing simulated twice
        assert report.store_hits == report.unique_jobs
        assert report.cache_stats.compiles == 0   # nothing compiled either
    finally:
        await scheduler.aclose()


def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="eric-async-fleets-")
    print(f"store: {store_dir}\n")
    asyncio.run(serve(store_dir))
    asyncio.run(resume(store_dir))


if __name__ == "__main__":
    main()
