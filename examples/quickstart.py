#!/usr/bin/env python3
"""Quickstart: the whole ERIC flow (paper Fig. 3, steps 1-6).

A software source compiles a MiniC program, encrypts it for one specific
device, ships it, and the device decrypts, validates and runs it.  The
session API keeps the compiled artifact cached, so the second deployment
of the same program skips compilation entirely.

Run:  python examples/quickstart.py
"""

from repro import DeploymentSession, Device

SOURCE = """
int main() {
    print_str("hello from inside the trusted zone\\n");
    int sum = 0;
    for (int i = 1; i <= 100; i++) { sum += i; }
    print_int(sum);
    print_char('\\n');
    return 0;
}
"""


def main() -> None:
    # The target device: its arbiter PUF is seeded by `device_seed`,
    # standing in for silicon process variation.
    device = Device(device_seed=0xC0FFEE)

    # A session owns the enrollment registry, the ERIC compiler and the
    # compiled-artifact cache.  deploy() enrolls the device, compiles+
    # signs+encrypts the program under the device's PUF-based key,
    # transfers the package, and has the device decrypt/validate/run it.
    session = DeploymentSession()
    result = session.deploy(SOURCE, device, name="quickstart")

    print("device said:")
    print(result.stdout)
    print(f"exit code          : {result.exit_code}")
    print(f"package size       : {len(result.delivered_bytes)} bytes")
    print(f"HDE decrypt cycles : {result.run_result.hde.total_cycles}")
    print(f"program run cycles : {result.run_result.run.counters.cycles}")
    print(f"end-to-end cycles  : {result.total_cycles}")
    wall = result.run_result.run.wall_time_at_clock(25.0)
    print(f"wall time at 25 MHz: {wall * 1e3:.2f} ms")

    # Deploy the same program again: the artifact cache answers, the
    # MiniC compiler never runs a second time.
    session.deploy(SOURCE, device, name="quickstart")
    stats = session.cache_stats
    print(f"two deployments    : {stats.compiles} compile "
          f"({stats.hits} cache hit)")


if __name__ == "__main__":
    main()
