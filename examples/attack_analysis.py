#!/usr/bin/env python3
"""Static and dynamic analysis attacks, quantified (paper §I threats).

Plays the attacker against both a plain binary and an ERIC package:

* static analysis — disassemble, histogram opcodes, measure entropy,
  extract strings;
* dynamic analysis — run the captured binary on attacker hardware and
  harvest performance counters.

Run:  python examples/attack_analysis.py
"""

from repro import Device, EricCompiler
from repro.cc.driver import compile_source
from repro.net.dynamic_attacker import attempt_execution
from repro.net.static_attacker import analyze_blob, mnemonic_entropy

SOURCE = """
char vendor_tag[] = "ACME-PROPRIETARY-FILTER-v3";

int filter_sample(int x) {
    // the "trade secret": a weighted filter with magic coefficients
    return (x * 17 + 29) % 9973;
}

int main() {
    int acc = 0;
    for (int i = 0; i < 500; i++) { acc += filter_sample(i); }
    print_int(acc);
    print_char('\\n');
    return 0;
}
"""


def show_static(label: str, blob: bytes) -> None:
    report = analyze_blob(blob)
    top = sorted(report.opcode_histogram.items(), key=lambda kv: -kv[1])[:4]
    print(f"  {label}:")
    print(f"    decode rate      : {report.valid_decode_fraction:.1%}")
    print(f"    byte entropy     : {report.byte_entropy_bits:.2f} bits")
    print(f"    mnemonic entropy : "
          f"{mnemonic_entropy(report.opcode_histogram):.2f} bits")
    print(f"    top mnemonics    : {', '.join(f'{n} x{c}' for n, c in top)}")
    print(f"    verdict          : "
          f"{'LOOKS LIKE CODE' if report.looks_like_code else 'noise'}")


def main() -> None:
    owner = Device(device_seed=41)
    attacker_device = Device(device_seed=666)

    plain = compile_source(SOURCE, name="victim").program
    package = EricCompiler().compile_and_package(
        SOURCE, owner.enrollment_key(), name="victim")

    print("=== static analysis (the reverse engineer's desk) ===")
    show_static("plain binary text", plain.text)
    show_static("ERIC package text", package.package.enc_text)

    print("\n=== dynamic analysis (attacker-controlled hardware) ===")
    stolen = attempt_execution(attacker_device, package.package_bytes)
    print(f"  attacker device : outcome={stolen.outcome!r}, "
          f"instructions observed={stolen.instructions_observed}, "
          f"leaked={stolen.leaked_behaviour}")

    owned = attempt_execution(owner, package.package_bytes)
    print(f"  target device   : outcome={owned.outcome!r}, "
          f"instructions observed={owned.instructions_observed}")
    mix = sorted(owned.counters.items())[:3]
    print(f"    (the owner of course sees real counters: "
          f"{', '.join(f'{k}={v}' for k, v in mix)} ...)")


if __name__ == "__main__":
    main()
