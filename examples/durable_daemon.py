#!/usr/bin/env python3
"""Durable serving: submit, crash mid-serve, resume from the journal.

The async fleet scheduler (``examples/async_fleets.py``) multiplexes
concurrent fleets, but everything it knows is in-memory — a crash
mid-serve loses every half-served fleet.  The serve daemon pairs the
scheduler with an append-only request journal:

* ``submit_fleets`` journals each fleet as a durable request — the
  submitter can exit, crash, or live in another process entirely;
* ``ServeDaemon`` admits journaled requests (per-tenant quotas, a
  pending-jobs watermark, priorities), serves them through the shared
  farm/store pair, and journals every state change before acting on
  it;
* a stopped daemon — graceful SIGTERM or hard crash — leaves its
  in-flight requests in the journal; the next daemon replays them,
  and jobs measured before the stop are store hits, not re-runs.

This example submits two fleets, stops the daemon at its first
checkpoint (an in-process stand-in for SIGTERM), then starts a fresh
daemon that resumes and finishes — with exactly one simulation per
job across both runs.

Run:  python examples/durable_daemon.py
"""

import asyncio
import pathlib
import sys
import tempfile

if True:  # allow running straight from a checkout
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.farm import ResultStore
from repro.service.daemon import (JournalStore, ServeDaemon,
                                  format_status, submit_fleets)
from repro.service.telemetry import StagePrinter

TELEMETRY_FW = """
int main() {
    print_str("telemetry firmware\\n");
    return 0;
}
"""

SENSOR_FW = """
int main() {
    print_str("sensor firmware\\n");
    return 0;
}
"""

#: Two fleets, each three devices: 6 jobs in total (the firmwares
#: differ, so the seed the fleets share is still two distinct jobs).
FLEETS = {"fleets": [
    {"name": "telemetry-rollout",
     "programs": [{"name": "telemetry", "source": TELEMETRY_FW}],
     "device_seeds": [0x9001, 0x9002, 0x9003]},
    {"name": "sensor-rollout",
     "programs": [{"name": "sensor", "source": SENSOR_FW}],
     "device_seeds": [0x9003, 0x9004, 0x9005]},
]}


class CrashAtFirstCheckpoint:
    """Stop the daemon as soon as it checkpoints — the moment a real
    deployment would be killed by SIGTERM or a node failure."""

    def __init__(self, daemon: ServeDaemon) -> None:
        self.daemon = daemon

    def __call__(self, event) -> None:
        if event.stage == "daemon.checkpoint":
            self.daemon.request_shutdown()


def main() -> int:
    work = pathlib.Path(tempfile.mkdtemp(prefix="durable-daemon-"))
    journal_dir, store_dir = work / "journal", work / "store"

    # 1. submit: the requests are durable before any daemon runs
    records = submit_fleets(JournalStore(journal_dir), FLEETS,
                            tenant="ops", priority=1)
    print(f"submitted {len(records)} request(s) to {journal_dir}")

    # 2. serve until the first checkpoint, then "crash"
    daemon = ServeDaemon(JournalStore(journal_dir),
                         store=ResultStore(store_dir),
                         checkpoint_every=1,
                         telemetry=StagePrinter(stages="daemon."))
    daemon.on_event(CrashAtFirstCheckpoint(daemon))
    crashed = asyncio.run(daemon.run(once=True))
    print(f"\ninterrupted: {crashed.summary()}\n")
    print(format_status(JournalStore(journal_dir)))

    # 3. a fresh daemon replays the journal and finishes the fleets;
    #    jobs measured before the crash come back as store hits
    daemon = ServeDaemon(JournalStore(journal_dir),
                         store=ResultStore(store_dir),
                         telemetry=StagePrinter(stages="daemon."))
    print("\nrestarting ...")
    finished = asyncio.run(daemon.run(once=True))
    print(f"\nresumed: {finished.summary()}\n")
    print(format_status(JournalStore(journal_dir)))

    total = crashed.executed + finished.executed
    print(f"\nsimulations across crash + resume: {total} "
          f"(= total jobs; nothing measured twice)")
    assert finished.completed + crashed.completed == len(records)
    assert total == 6
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
