#!/usr/bin/env python3
"""Fleet deployment: one compile, many devices (paper §III.1).

"If the hardware manufacturer maps two or more different hardware to the
same PUF-based key ... programs can be created to run on multiple
hardware of their own with a single compile step."

The registry issues a *group key* plus per-device XOR helper data; every
enrolled device recovers the group key inside its own KMU, so a single
package serves the whole fleet — while non-members still can't run it.

Run:  python examples/fleet_deployment.py
"""

from repro import Device, DeviceRegistry, EricCompiler, ValidationError

SOURCE = """
int main() {
    print_str("fleet firmware v1\\n");
    return 0;
}
"""


def main() -> None:
    registry = DeviceRegistry()
    fleet = [Device(device_seed=5000 + i) for i in range(4)]
    for device in fleet:
        registry.enroll(device)

    group = registry.provision_group([d.device_id for d in fleet])
    print(f"provisioned {group.group_id} for {len(fleet)} devices")

    # ONE compile for the whole fleet:
    compiler = EricCompiler()
    package = compiler.compile_and_package(SOURCE, group.group_key,
                                           name="firmware")
    print(f"single package: {package.package_size} bytes\n")

    for device in fleet:
        mask = group.masks[device.device_id]
        outcome = device.load_and_run(package.package_bytes, key_mask=mask)
        print(f"  {device.device_id}: {outcome.run.stdout.strip()!r} "
              f"({outcome.total_cycles} cycles)")

    print("\nan outsider device (not in the group):")
    outsider = Device(device_seed=9999)
    try:
        outsider.load_and_run(package.package_bytes,
                              key_mask=group.masks[fleet[0].device_id])
        print("  !!! outsider ran the firmware (should never happen)")
    except ValidationError:
        print("  blocked: helper data is useless without the matching PUF")


if __name__ == "__main__":
    main()
