#!/usr/bin/env python3
"""Fleet deployment: compile once, encrypt per device (paper §III.1).

ERIC's practicality claim is that device-keyed encryption is cheap
enough to run at deployment scale.  ``DeploymentSession.deploy_fleet``
makes that concrete: the program is compiled and signed exactly once
(the device-independent artifact), then encrypted under each target's
PUF-based key and pushed out by a worker pool.  A device that fails
validation is reported, not fatal — the rest of the fleet still ships.

The registry's *device groups* remain available for the paper's
single-package variant (one group key + per-device helper data); this
example shows the per-device-key pipeline, which keeps every package
unique to its die.

Run:  python examples/fleet_deployment.py
"""

from repro import DeploymentSession, Device, RecordingTelemetry

SOURCE = """
int main() {
    print_str("fleet firmware v2\\n");
    return 0;
}
"""


def main() -> None:
    session = DeploymentSession()
    telemetry = RecordingTelemetry()
    session.on_event(telemetry)

    fleet = [Device(device_seed=5000 + i) for i in range(10)]

    # A saboteur: its enrollment record claims the identity of the first
    # fleet member, so its package decrypts under the wrong PUF key.
    impostor = Device(device_seed=0xBAD5EED)
    impostor.device_id = fleet[0].device_id

    report = session.deploy_fleet(SOURCE, fleet + [impostor],
                                  max_workers=4, name="firmware")
    print(report.summary())
    print()

    for outcome in report.succeeded:
        print(f"  {outcome.device_id}: "
              f"{outcome.result.stdout.strip()!r} "
              f"({outcome.result.total_cycles} cycles)")
    for outcome in report.failed:
        print(f"  {outcome.device_id}: BLOCKED "
              f"({type(outcome.error).__name__})")

    stats = session.cache_stats
    print(f"\ncompiled {stats.compiles}x for {report.device_count} "
          f"devices; per-stage telemetry events: "
          f"{len(telemetry.stages('package'))} package, "
          f"{len(telemetry.stages('execute'))} execute")


if __name__ == "__main__":
    main()
