"""Legacy setup shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs cannot build. This shim lets
``pip install -e .`` fall back to ``setup.py develop``
(``no-use-pep517 = true`` is set in the user pip config). All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
